"""System configuration presets for the evaluation matrix.

A :class:`SystemConfig` names everything Figure 7 and Figure 8 vary: the
processor-side prefetcher (Conven4 on/off), the ULMT algorithm (if any), the
Verbose/Non-Verbose mode, and the memory-processor placement.  The presets
in :data:`PRESETS` are the bar labels of Figure 7/8; ``custom`` resolves
per-application through Table 5 (:mod:`repro.core.customization`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.customization import customization_for
from repro.faults.plan import FaultPlan
from repro.params import CONVEN4_PARAMS, MemProcLocation, SequentialParams


@dataclass(frozen=True)
class SystemConfig:
    """One point of the evaluation matrix."""

    name: str = "nopref"
    #: ULMT algorithm spec for :func:`repro.core.customization.build_algorithm`
    #: (None disables memory-side prefetching).
    ulmt_algorithm: Optional[str] = None
    #: Processor-side hardware prefetcher parameters (None = off).
    conven: Optional[SequentialParams] = None
    #: Verbose mode: the ULMT also observes processor prefetch requests.
    verbose: bool = False
    location: MemProcLocation = MemProcLocation.DRAM
    #: Correlation-table NumRows override (per-application Table 2 sizing).
    num_rows: Optional[int] = None
    #: Queue 1-3 depth override (Table 3 default: 16) — ablation knob.
    queue_depth: Optional[int] = None
    #: Filter module entries override (Table 3 default: 32) — ablation knob.
    filter_entries: Optional[int] = None
    #: Main-processor ROB run-ahead override — model-sensitivity knob.
    rob_refs: Optional[int] = None
    #: Enable the DASP-style hardwired pull prefetcher in the North Bridge
    #: (the related-work baseline of Sections 2.1 and 6).
    dasp: bool = False
    #: Fault-injection plan (None or all-zero keeps the run bit-identical
    #: to a fault-free simulation); see :mod:`repro.faults`.
    fault_plan: Optional[FaultPlan] = None
    #: Run the cross-structure invariant audit after every event (also
    #: switched on globally by ``REPRO_INVARIANTS=1``).
    invariants: bool = False
    #: ULMT backlog watchdog (graceful degradation): None = auto, i.e.
    #: enabled exactly when fault injection is active.
    watchdog: Optional[bool] = None
    #: Simulation engine: ``"event"`` (the per-reference oracle) or
    #: ``"batch"`` (the vectorized kernel, :mod:`repro.kernel`).  The two
    #: produce bit-identical results — the engine is an implementation
    #: choice, not a model parameter, and result-cache keys ignore it.
    engine: str = "event"
    #: Number of main processors.  1 (the default) is the paper's machine;
    #: N > 1 routes the run through :mod:`repro.multicore`, which gives
    #: each core a private tile and one per-app ULMT and arbitrates the
    #: shared correlation-table capacity and push bandwidth across cores.
    #: Cache keys omit both fields at their defaults, so every existing
    #: single-core fingerprint is preserved.
    num_cores: int = 1
    #: Cross-core coordination policy (:mod:`repro.multicore.coordination`):
    #: ``"static"`` partitions resources equally, ``"demand"`` proportional
    #: to each application's trace footprint.  Ignored when ``num_cores``
    #: is 1.
    coordination: str = "static"

    def with_engine(self, engine: str) -> "SystemConfig":
        """This configuration run under a different simulation engine."""
        return replace(self, engine=engine)

    def with_cores(self, num_cores: int,
                   coordination: "str | None" = None) -> "SystemConfig":
        """This configuration scaled out to ``num_cores`` processors."""
        if coordination is None:
            return replace(self, num_cores=num_cores)
        return replace(self, num_cores=num_cores, coordination=coordination)

    def with_num_rows(self, num_rows: int) -> "SystemConfig":
        return replace(self, num_rows=num_rows)

    def with_faults(self, fault_plan: FaultPlan,
                    invariants: bool = False) -> "SystemConfig":
        """This configuration under a fault plan (chaos sweeps)."""
        return replace(self, fault_plan=fault_plan,
                       invariants=invariants or self.invariants)


PRESETS: dict[str, SystemConfig] = {
    "nopref": SystemConfig(name="nopref"),
    "conven4": SystemConfig(name="conven4", conven=CONVEN4_PARAMS),
    "base": SystemConfig(name="base", ulmt_algorithm="base"),
    "chain": SystemConfig(name="chain", ulmt_algorithm="chain"),
    "repl": SystemConfig(name="repl", ulmt_algorithm="repl"),
    "seq1": SystemConfig(name="seq1", ulmt_algorithm="seq1"),
    "seq4": SystemConfig(name="seq4", ulmt_algorithm="seq4"),
    "conven4+repl": SystemConfig(name="conven4+repl", ulmt_algorithm="repl",
                                 conven=CONVEN4_PARAMS),
    "conven4+replMC": SystemConfig(name="conven4+replMC", ulmt_algorithm="repl",
                                   conven=CONVEN4_PARAMS,
                                   location=MemProcLocation.NORTH_BRIDGE),
    "baseMC": SystemConfig(name="baseMC", ulmt_algorithm="base",
                           location=MemProcLocation.NORTH_BRIDGE),
    "replMC": SystemConfig(name="replMC", ulmt_algorithm="repl",
                           location=MemProcLocation.NORTH_BRIDGE),
    "dasp": SystemConfig(name="dasp", dasp=True),
}


def preset(name: str) -> SystemConfig:
    """Look up a named preset (KeyError lists the alternatives)."""
    try:
        return PRESETS[name]
    except KeyError:
        raise KeyError(f"unknown preset {name!r}; available: "
                       f"{sorted(PRESETS)}") from None


def custom_config(app: str) -> SystemConfig:
    """The Table 5 customised configuration for an application.

    Applications without a Table 5 entry fall back to Conven4+Repl, which is
    how the paper computes its 1.53 average (customisation applied to three
    applications, the rest keeping their Conven4+Repl bars).
    """
    customization = customization_for(app)
    if customization is None:
        return preset("conven4+repl")
    return SystemConfig(name=f"custom:{app}",
                        ulmt_algorithm=customization.algorithm,
                        conven=CONVEN4_PARAMS,
                        verbose=customization.verbose)
