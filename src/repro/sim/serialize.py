"""Serialisation helpers for the result-cache round trip.

Every stats dataclass that travels through the persistent result cache
(:mod:`repro.perf.cache`) carries ``to_dict``/``from_dict`` methods built on
the two helpers here.  The contract is *exact* round-tripping: ints stay
ints, floats survive via JSON's shortest-repr round trip, tuples come back
as tuples — so a :class:`~repro.sim.stats.SimResult` loaded from disk prints
byte-identically to the freshly simulated one.

:func:`canonical` additionally renders arbitrary (nested, frozen) dataclass
trees — :class:`~repro.sim.config.SystemConfig` with its
:class:`~repro.params.SequentialParams` and
:class:`~repro.faults.plan.FaultPlan` payloads — into a deterministic
JSON-able structure, which is what the cache's content hash is computed
over.
"""

from __future__ import annotations

import dataclasses
import enum
import json
from typing import Any, Mapping, Type, TypeVar

T = TypeVar("T")


def json_line(value: Any) -> str:
    """Render a JSON-able value as one byte-deterministic line.

    Compact separators + sorted keys: two structurally equal values always
    produce the same bytes, which is what the observability layer's
    JSON-lines event streams (:mod:`repro.obs`) are compared on.
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def flat_to_dict(obj: Any) -> dict:
    """Serialise a *flat* stats dataclass (scalar and dict fields only)."""
    out: dict[str, Any] = {}
    for f in dataclasses.fields(obj):
        value = getattr(obj, f.name)
        if isinstance(value, dict):
            value = dict(value)
        elif isinstance(value, tuple):
            value = list(value)
        out[f.name] = value
    return out


def flat_from_dict(cls: Type[T], data: Mapping[str, Any]) -> T:
    """Rebuild a flat stats dataclass from :func:`flat_to_dict` output.

    Unknown keys are rejected (they indicate a corrupted or incompatible
    cache entry — the caller treats the exception as a cache miss); missing
    keys fall back to the dataclass defaults so older cache entries survive
    purely-additive schema growth.
    """
    names = {f.name for f in dataclasses.fields(cls)}
    unknown = set(data) - names
    if unknown:
        raise ValueError(f"{cls.__name__}: unknown fields {sorted(unknown)}")
    return cls(**{k: v for k, v in data.items() if k in names})


def canonical(value: Any) -> Any:
    """Render a value tree into a deterministic JSON-able structure.

    Dataclasses become ``{field: canonical(value)}`` dicts, enums their
    ``value``, tuples lists, and dict keys are emitted in sorted order.
    Used for cache-key fingerprints: two equal configs always canonicalise
    to the same structure regardless of construction order.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: canonical(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, enum.Enum):
        return canonical(value.value)
    if isinstance(value, (list, tuple)):
        return [canonical(v) for v in value]
    if isinstance(value, dict):
        return {str(k): canonical(value[k]) for k in sorted(value)}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot canonicalise {type(value).__name__}: {value!r}")
