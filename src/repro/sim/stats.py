"""Aggregated simulation results.

:class:`SimResult` collects everything a single run produces, with derived
metrics named after the paper's figures: the execution-time breakdown of
Figure 7, the miss/prefetch classification of Figure 9, the ULMT
response/occupancy/IPC of Figure 10, the bus utilisation of Figure 11, and
the inter-miss-distance histogram of Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cpu.processor import ProcessorStats
from repro.faults.plan import FaultStats
from repro.memsys.bus import BusStats
from repro.memsys.l2 import L2Stats
from repro.core.ulmt import UlmtStats
from repro.sim.serialize import flat_from_dict, flat_to_dict

def result_counter_metrics(result: "SimResult") -> dict[str, int]:
    """Headline counters of a run, named for the metrics registry.

    :func:`repro.obs.runner.run_traced` folds these into the run's
    metrics snapshot so a merged (multi-cell, multi-worker) summary
    carries coverage/accuracy context without re-reading every result.
    Keys are stable — they are part of the trace-CLI output the golden
    battery pins.
    """
    l2 = result.l2
    counters = {
        "run.cells": 1,
        "run.demand_misses_to_memory": result.demand_misses_to_memory,
        "run.prefetches_issued": result.prefetches_issued_to_memory,
        "l2.prefetch_hits": l2.prefetch_hits,
        "l2.delayed_hits": l2.delayed_hits,
        "l2.nonpref_misses": l2.nonpref_misses,
        "l2.replaced_prefetches": l2.replaced_prefetches,
        "l2.redundant_prefetches": l2.redundant_prefetches,
        "l2.dropped_writeback_match": l2.dropped_writeback_match,
        "l2.dropped_mshr_full": l2.dropped_mshr_full,
        "l2.dropped_set_pending": l2.dropped_set_pending,
        "l2.accepted_prefetches": l2.accepted_prefetches,
        "robustness.total_sheds": result.robustness.total_sheds,
    }
    if result.ulmt is not None:
        counters["ulmt.misses_processed"] = result.ulmt.misses_processed
        counters["ulmt.misses_dropped"] = result.ulmt.misses_dropped
        counters["ulmt.prefetches_generated"] = \
            result.ulmt.prefetches_generated
        counters["ulmt.prefetches_filtered"] = \
            result.ulmt.prefetches_filtered
    return counters


#: Figure 6 bin edges (1.6 GHz cycles); the last bin is open-ended.
MISS_DISTANCE_BINS = (0, 80, 200, 280)
MISS_DISTANCE_LABELS = ("[0,80)", "[80,200)", "[200,280)", "[280,Inf)")


def distance_bin(distance: int) -> int:
    """Index of the Figure 6 bin a miss distance falls into."""
    if distance < 80:
        return 0
    if distance < 200:
        return 1
    if distance < 280:
        return 2
    return 3


@dataclass
class UlmtTimingStats:
    """Figure 10 quantities (main-processor cycles)."""

    avg_response: float = 0.0
    avg_occupancy: float = 0.0
    response_busy: float = 0.0
    response_mem: float = 0.0
    occupancy_busy: float = 0.0
    occupancy_mem: float = 0.0
    ipc: float = 0.0
    observations: int = 0

    def to_dict(self) -> dict:
        return flat_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "UlmtTimingStats":
        return flat_from_dict(cls, data)


@dataclass
class RobustnessStats:
    """Degradation made observable: every place the pipeline sheds work.

    These counters always existed inside the Filter, the queues, and the
    ULMT, but were only reachable with a debugger; surfacing them in the
    result is what lets a chaos sweep (or an operator) see *how* the system
    degraded rather than just that it got slower.
    """

    #: Filter module: prefetches admitted / suppressed as recently issued.
    filter_passed: int = 0
    filter_dropped: int = 0
    #: Queue 2 (observations): overflow drops and queue-2/3 cross-matches.
    queue2_overflow_drops: int = 0
    queue2_crossmatch_drops: int = 0
    #: Queue 3 (prefetch requests): overflow drops and demand-miss cancels.
    queue3_overflow_drops: int = 0
    queue3_demand_cancels: int = 0
    #: ULMT resilience: crashes survived and learning steps shed by the
    #: backlog watchdog (prefetch-only mode).
    ulmt_warm_restarts: int = 0
    watchdog_activations: int = 0
    watchdog_recoveries: int = 0
    degraded_observations: int = 0
    #: Invariant audits executed (0 unless enabled; a passed run means
    #: every audit held).
    invariant_audits: int = 0

    @property
    def total_sheds(self) -> int:
        """Work items the pipeline dropped instead of falling over."""
        return (self.filter_dropped + self.queue2_overflow_drops
                + self.queue3_overflow_drops + self.degraded_observations)

    def to_dict(self) -> dict:
        return flat_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RobustnessStats":
        return flat_from_dict(cls, data)


@dataclass
class SimResult:
    """Everything one simulation run produced."""

    workload: str
    config_name: str
    processor: ProcessorStats
    l2: L2Stats
    bus: BusStats
    ulmt: Optional[UlmtStats] = None
    ulmt_timing: Optional[UlmtTimingStats] = None
    miss_distance_counts: tuple[int, int, int, int] = (0, 0, 0, 0)
    demand_misses_to_memory: int = 0
    prefetches_issued_to_memory: int = 0
    #: Fault events injected (all zero when no plan / an all-zero plan).
    faults: FaultStats = field(default_factory=FaultStats)
    #: Degradation counters (always populated).
    robustness: RobustnessStats = field(default_factory=RobustnessStats)

    # -- Figure 7 -----------------------------------------------------------------

    @property
    def execution_time(self) -> int:
        return self.processor.finish_time

    def normalized_breakdown(self, baseline_time: int) -> dict[str, float]:
        """Busy/UptoL2/BeyondL2 fractions normalised to a baseline run."""
        if baseline_time <= 0:
            raise ValueError("baseline execution time must be positive")
        return {
            "busy": self.processor.busy_cycles / baseline_time,
            "uptol2": self.processor.uptol2_stall / baseline_time,
            "beyondl2": self.processor.beyondl2_stall / baseline_time,
        }

    def speedup_over(self, baseline: "SimResult") -> float:
        if self.execution_time <= 0:
            raise ValueError("execution time must be positive")
        return baseline.execution_time / self.execution_time

    # -- Figure 9 -----------------------------------------------------------------

    def coverage(self) -> float:
        return self.l2.coverage()

    def miss_breakdown(self) -> dict[str, float]:
        """Figure 9 categories normalised to the original number of misses."""
        denom = self.l2.original_misses_equivalent
        if denom == 0:
            return {k: 0.0 for k in
                    ("hits", "delayed_hits", "nonpref_misses",
                     "replaced", "redundant")}
        return {
            "hits": self.l2.prefetch_hits / denom,
            "delayed_hits": self.l2.delayed_hits / denom,
            "nonpref_misses": self.l2.nonpref_misses / denom,
            "replaced": self.l2.replaced_prefetches / denom,
            "redundant": self.l2.redundant_prefetches / denom,
        }

    # -- Figure 6 ------------------------------------------------------------------

    def miss_distance_fractions(self) -> tuple[float, float, float, float]:
        total = sum(self.miss_distance_counts)
        if total == 0:
            return (0.0, 0.0, 0.0, 0.0)
        return tuple(c / total for c in self.miss_distance_counts)

    # -- Figure 11 ------------------------------------------------------------------

    def bus_utilization(self) -> float:
        return self.bus.utilization(self.execution_time)

    def bus_prefetch_utilization(self) -> float:
        return self.bus.prefetch_utilization(self.execution_time)

    # -- persistence (repro.perf.cache) ---------------------------------------------

    def to_dict(self) -> dict:
        """JSON-able representation with exact round-trip semantics."""
        return {
            "workload": self.workload,
            "config_name": self.config_name,
            "processor": self.processor.to_dict(),
            "l2": self.l2.to_dict(),
            "bus": self.bus.to_dict(),
            "ulmt": self.ulmt.to_dict() if self.ulmt is not None else None,
            "ulmt_timing": (self.ulmt_timing.to_dict()
                            if self.ulmt_timing is not None else None),
            "miss_distance_counts": list(self.miss_distance_counts),
            "demand_misses_to_memory": self.demand_misses_to_memory,
            "prefetches_issued_to_memory": self.prefetches_issued_to_memory,
            "faults": self.faults.to_dict(),
            "robustness": self.robustness.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SimResult":
        """Rebuild a result from :meth:`to_dict` output.

        Raises ``KeyError``/``TypeError``/``ValueError`` on malformed input;
        the persistent cache treats any of those as a miss and recomputes.
        """
        ulmt = data["ulmt"]
        timing = data["ulmt_timing"]
        counts = data["miss_distance_counts"]
        if len(counts) != 4:
            raise ValueError(f"miss_distance_counts must have 4 bins: {counts}")
        c0, c1, c2, c3 = counts
        return cls(
            workload=data["workload"],
            config_name=data["config_name"],
            processor=ProcessorStats.from_dict(data["processor"]),
            l2=L2Stats.from_dict(data["l2"]),
            bus=BusStats.from_dict(data["bus"]),
            ulmt=UlmtStats.from_dict(ulmt) if ulmt is not None else None,
            ulmt_timing=(UlmtTimingStats.from_dict(timing)
                         if timing is not None else None),
            miss_distance_counts=(c0, c1, c2, c3),
            demand_misses_to_memory=data["demand_misses_to_memory"],
            prefetches_issued_to_memory=data["prefetches_issued_to_memory"],
            faults=FaultStats.from_dict(data["faults"]),
            robustness=RobustnessStats.from_dict(data["robustness"]),
        )
