"""Figure 6: histogram of the time between consecutive L2 misses.

Paper reference: the [200, 280) bin dominates, contributing ~60% of all
miss distances on average — those are the dependent misses whose spacing is
the 208-243 cycle memory round trip, the ones the ULMT must prefetch and is
fast enough to learn (occupancy < 200 cycles).
"""

from __future__ import annotations

from repro.analysis.missdist import (
    MissDistanceResult,
    average_fractions,
    result_to_distances,
)
from repro.experiments.common import (
    all_apps,
    cached_run,
    format_table,
    pct,
    resolve_scale,
)
from repro.sim.stats import MISS_DISTANCE_LABELS

PAPER_DOMINANT_BIN = "[200,280)"
PAPER_DOMINANT_FRACTION = 0.60


def run(scale: float | None = None,
        apps: list[str] | None = None) -> dict:
    # The histogram comes from the same NoPref run Figures 7/8/11 use as
    # their baseline, so this section is free when that run is cached.
    scale = resolve_scale(scale)
    results = [result_to_distances(app, cached_run(app, "nopref", scale))
               for app in (apps or all_apps())]
    return {"apps": results, "average": average_fractions(results)}


def main() -> None:
    from repro.experiments.charts import stacked_bar_chart

    result = run()
    rows = [[r.app] + [pct(f) for f in r.fractions]
            for r in result["apps"]]
    rows.append(["Average"] + [pct(f) for f in result["average"]])
    print(format_table(["App"] + list(MISS_DISTANCE_LABELS), rows,
                       title="Figure 6 — time between L2 misses (1.6 GHz cycles)"))
    items = [(r.app, dict(zip(MISS_DISTANCE_LABELS, r.fractions)))
             for r in result["apps"]]
    print(stacked_bar_chart(items, MISS_DISTANCE_LABELS, total_of=1.0))
    avg = result["average"]
    print(f"\nPaper: {PAPER_DOMINANT_BIN} bin ~{pct(PAPER_DOMINANT_FRACTION)}"
          f" on average; ours: {pct(avg[2])}")


if __name__ == "__main__":
    main()
