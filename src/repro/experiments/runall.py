"""Regenerate every table and figure of the paper in one run.

Usage::

    python -m repro.experiments.runall [--scale 1.0] [--timeout 900]
        [--jobs N] [--cache-dir DIR | --no-cache] [--profile]
        [--engine event|batch]

Simulation results are shared across figures through the common result
cache, so the full matrix (9 applications x ~9 configurations) is only run
once.  With ``--jobs N`` the matrix is prewarmed across N worker processes
before any section prints; with the persistent cache (on by default, see
``docs/PERFORMANCE.md``) a rerun at the same scale replays from disk.
Either way the section output is identical to a serial uncached run —
progress and diagnostics go to stderr, results to stdout.

Each experiment runs isolated: a failure (or a blown per-experiment time
budget) is recorded and the matrix continues, with a summary of everything
that failed printed at the end.  The exit status is the number of failed
sections, so a partially broken tree still regenerates what it can.
"""

from __future__ import annotations

import argparse
import sys
import time
import traceback
from dataclasses import dataclass

from repro.perf.retry import TimeBudgetExceeded, time_budget

from repro.experiments import (
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    table1,
    table2,
    table3,
    table4,
    table5,
)
from repro.experiments import common

SECTIONS = (
    ("Table 1", table1.main, False),
    ("Table 2", table2.main, True),
    ("Table 3", table3.main, False),
    ("Table 4", table4.main, False),
    ("Table 5", table5.main, False),
    ("Figure 5", fig5.main, True),
    ("Figure 6", fig6.main, True),
    ("Figure 7", fig7.main, True),
    ("Figure 8", fig8.main, True),
    ("Figure 9", fig9.main, True),
    ("Figure 10", fig10.main, True),
    ("Figure 11", fig11.main, True),
)


#: Backwards-compatible alias: sections now time out through the portable
#: :func:`repro.perf.retry.time_budget` (SIGALRM on a Unix main thread, a
#: timer-thread interrupt everywhere else), so the budget is enforced on
#: every platform instead of silently running unbounded off-Unix.
ExperimentTimeout = TimeBudgetExceeded


@dataclass
class SectionFailure:
    """One experiment that did not complete."""

    name: str
    error: str
    elapsed: float


def run_sections(sections=SECTIONS, timeout: int = 0) -> list[SectionFailure]:
    """Run every section, isolating failures; returns what failed."""
    failures: list[SectionFailure] = []
    for name, runner, _expensive in sections:
        print(f"\n{'#' * 72}\n# {name}\n{'#' * 72}\n")
        section_start = time.time()
        try:
            with time_budget(float(timeout)):
                runner()
        except KeyboardInterrupt:
            raise
        except ExperimentTimeout as exc:
            elapsed = time.time() - section_start
            failures.append(SectionFailure(name, str(exc), elapsed))
            print(f"\n[{name} TIMED OUT after {elapsed:.1f}s — continuing]")
        except Exception as exc:
            elapsed = time.time() - section_start
            failures.append(SectionFailure(
                name, f"{type(exc).__name__}: {exc}", elapsed))
            traceback.print_exc()
            print(f"\n[{name} FAILED after {elapsed:.1f}s — continuing]")
        else:
            # stderr: keeps stdout byte-identical across serial, parallel
            # and warm-cache runs (only the figures land on stdout).
            print(f"[{name} done in {time.time() - section_start:.1f}s]",
                  file=sys.stderr)
    return failures


def enumerate_tasks(scale: float, trace: bool = False,
                    trace_dir: "str | None" = None) -> list:
    """Every independent cell the full regeneration needs.

    The union of the simulation configs of Figures 7-11 (plus the Table 5
    customisations), one Figure 5 predictability row per application, and
    one Table 2 sizing per application.  Figure 6 reuses the ``nopref``
    runs.  Order is deterministic (first-seen config order x app order).

    With ``trace_dir`` set the simulation cells become *streaming* trace
    tasks: each worker writes its ``<app>_<config>.jsonl`` event stream
    straight into ``trace_dir`` (atomically) and returns only a digest,
    so the full-matrix export holds O(buffer) events in memory per worker
    instead of O(stream).  With only ``trace=True`` the cells run as
    buffered trace tasks (full streams retained; pool-picklable and
    cacheable).  Either way the carried :class:`~repro.sim.stats.SimResult`
    is identical to an untraced run.
    """
    from repro.analysis.prediction import PREDICTORS
    from repro.obs.tracer import DEFAULT_STREAM_BUFFER
    from repro.perf.pool import (
        fig5_task,
        sim_task,
        stream_task,
        tablesize_task,
        trace_task,
    )

    config_names: list[str] = []
    for module_configs in (fig7.CONFIGS, ("custom",), fig8.CONFIGS,
                           fig9.CONFIGS, fig10.CONFIGS, fig11.CONFIGS):
        for name in module_configs:
            if name not in config_names:
                config_names.append(name)

    if trace_dir is not None:
        def make_task(app: str, name: str, scale: float):
            return stream_task(app, name, scale, trace_dir,
                               DEFAULT_STREAM_BUFFER)
    else:
        make_task = trace_task if trace else sim_task
    apps = common.all_apps()
    tasks = [make_task(app, name, scale)
             for name in config_names for app in apps]
    tasks += [fig5_task(app, scale, PREDICTORS) for app in apps]
    tasks += [tablesize_task(app, scale) for app in apps]
    return tasks


def multicore_summary(scale: float, cores: int, jobs: int = 1,
                      cache=None) -> None:
    """The ``--cores`` section: coordinated bundles at N cores.

    The applications are chunked into ``+``-joined bundles of exactly
    ``cores`` (in registry order; a trailing remainder that cannot fill a
    bundle is reported, never silently dropped) and each bundle runs
    under the ``repl`` preset with *both* coordination policies, so the
    table shows what demand-proportional arbitration buys over static
    partitioning.  Cells fan out through the pool and the persistent
    cache like every other matrix; the printed table is deterministic.
    """
    from repro.multicore.coordination import POLICIES
    from repro.perf.pool import mc_task, run_tasks
    from repro.sim.config import preset

    apps = common.all_apps()
    usable = len(apps) - len(apps) % cores
    bundles = ["+".join(apps[i:i + cores]) for i in range(0, usable, cores)]
    dropped = apps[usable:]
    if dropped:
        print(f"[multicore] {len(dropped)} app(s) left over at {cores} "
              f"cores per bundle: {', '.join(dropped)}", file=sys.stderr)
    tasks = [mc_task(bundle, preset("repl").with_cores(cores, policy), scale)
             for policy in POLICIES for bundle in bundles]
    results = run_tasks(tasks, jobs=jobs, cache=cache)
    print(f"coordinated bundles at {cores} cores (repl preset):\n")
    print(f"{'bundle':24s} {'policy':8s} {'makespan':>14s} "
          f"{'misses':>10s} {'coverage':>9s} {'accuracy':>9s}")
    for task, result in zip(tasks, results):
        policy = task.config.coordination
        if result is None:
            print(f"{task.app:24s} {policy:8s} {'FAILED':>14s}")
            continue
        print(f"{task.app:24s} {policy:8s} "
              f"{result.execution_time:>14,} "
              f"{result.demand_misses_to_memory:>10,} "
              f"{result.coverage():>9.3f} {result.accuracy():>9.3f}")


def _export_traces(trace_dir: str, tasks: list, results: list) -> None:
    """Finish the ``--trace-dir`` export after the streamed prewarm.

    The pool workers already wrote each ``<app>_<config>.jsonl`` stream
    atomically (see :func:`repro.perf.pool.stream_task`); what remains is
    the merged ``metrics.json`` — snapshots merge in task order, which
    equals the serial order regardless of how pool workers interleaved —
    written with the same atomic discipline.
    """
    from pathlib import Path

    from repro.obs.metrics import merge_all
    from repro.perf.cache import atomic_write_text
    from repro.perf.pool import KIND_STREAM
    from repro.sim.serialize import json_line

    out = Path(trace_dir)
    traced = [(task, run) for task, run in zip(tasks, results)
              if task.kind == KIND_STREAM and run is not None]
    merged = merge_all(run.metrics for _, run in traced)
    atomic_write_text(out / "metrics.json", json_line(merged) + "\n",
                      encoding="ascii")
    print(f"[trace] {len(traced)} event streams + metrics.json in {out}",
          file=sys.stderr)


def _build_cache(args):
    """The persistent cache implied by --cache-dir / --no-cache."""
    from repro.perf.cache import ResultCache, default_cache_dir

    if args.no_cache:
        return None
    return ResultCache(args.cache_dir or default_cache_dir())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=None,
                        help="workload scale factor (default 1.0)")
    parser.add_argument("--timeout", type=int, default=1800,
                        help="per-experiment time budget in seconds "
                             "(0 disables; default 1800)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the simulation matrix "
                             "(default 1 = serial)")
    parser.add_argument("--cache-dir", default=None,
                        help="persistent result cache directory (default "
                             ".repro-cache, or $REPRO_CACHE_DIR)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the persistent result cache")
    parser.add_argument("--profile", action="store_true",
                        help="profile the run and report time per "
                             "subsystem (to stderr)")
    parser.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="run the simulation matrix under the "
                             "observability tracer and write one JSON-lines "
                             "event stream per cell (plus a merged "
                             "metrics.json) into DIR; figures are unchanged")
    parser.add_argument("--cores", type=int, default=1, metavar="N",
                        help="also run the multicore scale-out section: "
                             "the applications chunked into N-wide bundles "
                             "under both coordination policies (default 1 "
                             "= skip)")
    parser.add_argument("--engine", choices=("event", "batch"),
                        default="event",
                        help="simulation engine for the prewarm matrix "
                             "(default event); 'batch' computes each cell "
                             "with the vectorized kernel — results are "
                             "bit-identical and the cache key ignores the "
                             "engine, so the sections replay the same "
                             "entries either way")
    args = parser.parse_args(argv)

    cache = _build_cache(args)
    previous_cache = common.set_disk_cache(cache)
    start = time.time()
    try:
        with common.use_scale(args.scale) as scale:
            tracing = args.trace_dir is not None
            batch_engine = args.engine == "batch"
            if args.jobs > 1 or tracing or batch_engine:
                from repro.perf.pool import prewarm, with_engine

                tasks = enumerate_tasks(scale, trace=tracing,
                                        trace_dir=args.trace_dir)
                # Kernel-aware prewarm: the batch kernel computes the
                # matrix; results are bit-identical and cache keys are
                # engine-blind, so install/replay happen under the
                # original (event-shaped) tasks the sections build.
                # Trace tasks stay on the event engine — the tracer
                # forces the scalar path anyway.
                exec_tasks = ([with_engine(task, "batch")
                               for task in tasks]
                              if batch_engine and not tracing else tasks)
                print(f"[prewarm] {len(tasks)} matrix cells across "
                      f"{args.jobs} workers"
                      + (" (batch kernel)" if batch_engine else ""),
                      file=sys.stderr)
                warm_start = time.time()
                results = prewarm(exec_tasks, jobs=args.jobs, cache=cache,
                                  verbose=True)
                common.install_prewarmed(tasks, results)
                print(f"[prewarm] done in {time.time() - warm_start:.1f}s",
                      file=sys.stderr)
                if tracing:
                    _export_traces(args.trace_dir, tasks, results)

            sections = SECTIONS
            if args.cores > 1:
                def _multicore_section() -> None:
                    multicore_summary(scale, args.cores, jobs=args.jobs,
                                      cache=cache)
                sections = SECTIONS + (
                    ("Multicore", _multicore_section, True),)
            if args.profile:
                from repro.perf.profile import profile_subsystems, render_profile

                failures, stats = profile_subsystems(
                    lambda: run_sections(sections, timeout=args.timeout))
                print(render_profile(stats), file=sys.stderr)
            else:
                failures = run_sections(sections, timeout=args.timeout)
    finally:
        common.set_disk_cache(previous_cache)
    if cache is not None:
        print(f"[cache] {cache.stats.describe()} in {cache.directory}",
              file=sys.stderr)

    total = time.time() - start
    if failures:
        print(f"\n{len(failures)}/{len(sections)} experiments FAILED "
              f"in {total:.1f}s:")
        for failure in failures:
            print(f"  {failure.name:10s} after {failure.elapsed:7.1f}s: "
                  f"{failure.error}")
    else:
        print(f"All experiments regenerated in {total:.1f}s",
              file=sys.stderr)
    return len(failures)


if __name__ == "__main__":
    raise SystemExit(main())
