"""Regenerate every table and figure of the paper in one run.

Usage::

    python -m repro.experiments.runall [--scale 1.0] [--timeout 900]

Simulation results are shared across figures through the common result
cache, so the full matrix (9 applications x ~9 configurations) is only run
once.

Each experiment runs isolated: a failure (or a blown per-experiment time
budget) is recorded and the matrix continues, with a summary of everything
that failed printed at the end.  The exit status is the number of failed
sections, so a partially broken tree still regenerates what it can.
"""

from __future__ import annotations

import argparse
import signal
import threading
import time
import traceback
from contextlib import contextmanager
from dataclasses import dataclass

from repro.experiments import (
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    table1,
    table2,
    table3,
    table4,
    table5,
)
from repro.experiments import common

SECTIONS = (
    ("Table 1", table1.main, False),
    ("Table 2", table2.main, True),
    ("Table 3", table3.main, False),
    ("Table 4", table4.main, False),
    ("Table 5", table5.main, False),
    ("Figure 5", fig5.main, True),
    ("Figure 6", fig6.main, True),
    ("Figure 7", fig7.main, True),
    ("Figure 8", fig8.main, True),
    ("Figure 9", fig9.main, True),
    ("Figure 10", fig10.main, True),
    ("Figure 11", fig11.main, True),
)


class ExperimentTimeout(RuntimeError):
    """An experiment exceeded its per-section time budget."""


@dataclass
class SectionFailure:
    """One experiment that did not complete."""

    name: str
    error: str
    elapsed: float


@contextmanager
def _time_budget(seconds: int):
    """Raise :class:`ExperimentTimeout` if the block runs too long.

    Uses ``SIGALRM``, so the budget is only enforced on platforms that have
    it and when running on the main thread; elsewhere the block runs
    unbounded (isolation via try/except still applies).
    """
    usable = (seconds > 0 and hasattr(signal, "SIGALRM")
              and threading.current_thread() is threading.main_thread())
    if not usable:
        yield
        return

    def _on_alarm(signum, frame):
        raise ExperimentTimeout(f"exceeded the {seconds}s section budget")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


def run_sections(sections=SECTIONS, timeout: int = 0) -> list[SectionFailure]:
    """Run every section, isolating failures; returns what failed."""
    failures: list[SectionFailure] = []
    for name, runner, _expensive in sections:
        print(f"\n{'#' * 72}\n# {name}\n{'#' * 72}\n")
        section_start = time.time()
        try:
            with _time_budget(timeout):
                runner()
        except KeyboardInterrupt:
            raise
        except ExperimentTimeout as exc:
            elapsed = time.time() - section_start
            failures.append(SectionFailure(name, str(exc), elapsed))
            print(f"\n[{name} TIMED OUT after {elapsed:.1f}s — continuing]")
        except Exception as exc:
            elapsed = time.time() - section_start
            failures.append(SectionFailure(
                name, f"{type(exc).__name__}: {exc}", elapsed))
            traceback.print_exc()
            print(f"\n[{name} FAILED after {elapsed:.1f}s — continuing]")
        else:
            print(f"\n[{name} done in {time.time() - section_start:.1f}s]")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=common.DEFAULT_SCALE,
                        help="workload scale factor (default 1.0)")
    parser.add_argument("--timeout", type=int, default=1800,
                        help="per-experiment time budget in seconds "
                             "(0 disables; default 1800)")
    args = parser.parse_args(argv)
    common.DEFAULT_SCALE = args.scale  # noqa: simple module-level knob

    start = time.time()
    failures = run_sections(timeout=args.timeout)
    total = time.time() - start
    if failures:
        print(f"\n{len(failures)}/{len(SECTIONS)} experiments FAILED "
              f"in {total:.1f}s:")
        for failure in failures:
            print(f"  {failure.name:10s} after {failure.elapsed:7.1f}s: "
                  f"{failure.error}")
    else:
        print(f"\nAll experiments regenerated in {total:.1f}s")
    return len(failures)


if __name__ == "__main__":
    raise SystemExit(main())
