"""Regenerate every table and figure of the paper in one run.

Usage::

    python -m repro.experiments.runall [--scale 1.0]

Simulation results are shared across figures through the common result
cache, so the full matrix (9 applications x ~9 configurations) is only run
once.
"""

from __future__ import annotations

import argparse
import time

from repro.experiments import (
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    table1,
    table2,
    table3,
    table4,
    table5,
)
from repro.experiments import common

SECTIONS = (
    ("Table 1", table1.main, False),
    ("Table 2", table2.main, True),
    ("Table 3", table3.main, False),
    ("Table 4", table4.main, False),
    ("Table 5", table5.main, False),
    ("Figure 5", fig5.main, True),
    ("Figure 6", fig6.main, True),
    ("Figure 7", fig7.main, True),
    ("Figure 8", fig8.main, True),
    ("Figure 9", fig9.main, True),
    ("Figure 10", fig10.main, True),
    ("Figure 11", fig11.main, True),
)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=common.DEFAULT_SCALE,
                        help="workload scale factor (default 1.0)")
    args = parser.parse_args(argv)
    common.DEFAULT_SCALE = args.scale  # noqa: simple module-level knob

    start = time.time()
    for name, runner, _expensive in SECTIONS:
        print(f"\n{'#' * 72}\n# {name}\n{'#' * 72}\n")
        section_start = time.time()
        runner()
        print(f"\n[{name} done in {time.time() - section_start:.1f}s]")
    print(f"\nAll experiments regenerated in {time.time() - start:.1f}s")


if __name__ == "__main__":
    main()
