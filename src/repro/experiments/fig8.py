"""Figure 8: impact of the memory-processor placement.

Compares Conven4+Repl with the memory processor in the DRAM chip against
the same algorithm with the processor in the North Bridge (memory
controller) chip — twice the memory latency, an eighth of the bandwidth,
and a 25-cycle prefetch-request delay.

Paper reference: the impact is small — average speedup drops from 1.46 to
1.41 — because Replicated prefetches far ahead accurately, so only the
immediate-successor prefetches lose timeliness.  The paper concludes the
North Bridge placement is the most cost-effective design.
"""

from __future__ import annotations

from repro.experiments.common import (
    resolve_scale,
    all_apps,
    cached_run,
    fmt,
    format_table,
)
from repro.sim.driver import arithmetic_mean

CONFIGS = ("nopref", "conven4+repl", "conven4+replMC")

PAPER = {"conven4+repl": 1.46, "conven4+replMC": 1.41}


def run(scale: float | None = None, apps: list[str] | None = None) -> dict:
    apps = apps or all_apps()
    table: dict[str, dict[str, float]] = {}
    speedups: dict[str, list[float]] = {c: [] for c in CONFIGS[1:]}
    for app in apps:
        baseline = cached_run(app, "nopref", scale)
        row = {}
        for config in CONFIGS[1:]:
            result = cached_run(app, config, scale)
            speedup = baseline.execution_time / result.execution_time
            row[config] = speedup
            speedups[config].append(speedup)
        table[app] = row
    return {"apps": table,
            "avg_speedups": {c: arithmetic_mean(v)
                             for c, v in speedups.items()}}


def main() -> None:
    result = run()
    rows = [[app, fmt(row["conven4+repl"]), fmt(row["conven4+replMC"])]
            for app, row in result["apps"].items()]
    rows.append(["Average", fmt(result["avg_speedups"]["conven4+repl"]),
                 fmt(result["avg_speedups"]["conven4+replMC"])])
    print(format_table(
        ["App", "Speedup (mem proc in DRAM)", "Speedup (in North Bridge)"],
        rows, title="Figure 8 — memory processor placement"))
    print(f"\nPaper: 1.46 (DRAM) vs 1.41 (North Bridge); "
          f"ours: {result['avg_speedups']['conven4+repl']:.2f} vs "
          f"{result['avg_speedups']['conven4+replMC']:.2f}")


if __name__ == "__main__":
    main()
