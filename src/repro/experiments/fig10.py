"""Figure 10: average response and occupancy time of the ULMT algorithms.

Each bar (Base, Chain, Repl, ReplMC) splits into computation (Busy) and
memory stall (Mem) time, in 1.6 GHz main-processor cycles, with the ULMT's
IPC printed on top.

Paper reference: every occupancy is below 200 cycles (fast enough for the
dominant Figure 6 bin); Chain and Repl have the lowest occupancies; Repl
has the lowest response (~30 cycles); ReplMC's response roughly doubles;
memory stall is about half the ULMT time in DRAM and more in the North
Bridge.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    resolve_scale,
    all_apps,
    cached_run,
    fmt,
    format_table,
)

CONFIGS = ("base", "chain", "repl", "replMC")

PAPER_OCCUPANCY_BUDGET = 200


@dataclass(frozen=True)
class Fig10Bar:
    config: str
    response: float
    response_busy: float
    response_mem: float
    occupancy: float
    occupancy_busy: float
    occupancy_mem: float
    ipc: float


def run(scale: float | None = None, apps: list[str] | None = None,
        configs: tuple[str, ...] = CONFIGS) -> list[Fig10Bar]:
    apps = apps or all_apps()
    bars = []
    for config in configs:
        timings = [cached_run(app, config, scale).ulmt_timing
                   for app in apps]
        timings = [t for t in timings if t is not None and t.observations > 0]
        n = len(timings)
        bars.append(Fig10Bar(
            config=config,
            response=sum(t.avg_response for t in timings) / n,
            response_busy=sum(t.response_busy for t in timings) / n,
            response_mem=sum(t.response_mem for t in timings) / n,
            occupancy=sum(t.avg_occupancy for t in timings) / n,
            occupancy_busy=sum(t.occupancy_busy for t in timings) / n,
            occupancy_mem=sum(t.occupancy_mem for t in timings) / n,
            ipc=sum(t.ipc for t in timings) / n,
        ))
    return bars


def main() -> None:
    bars = run()
    rows = [(b.config, fmt(b.response, 1), fmt(b.response_busy, 1),
             fmt(b.response_mem, 1), fmt(b.occupancy, 1),
             fmt(b.occupancy_busy, 1), fmt(b.occupancy_mem, 1),
             fmt(b.ipc, 2))
            for b in bars]
    print(format_table(
        ["Config", "Response", "  Busy", "  Mem", "Occupancy", "  Busy",
         "  Mem", "IPC"],
        rows, title="Figure 10 — ULMT response/occupancy (main-processor cycles)"))
    worst = max(b.occupancy for b in bars)
    print(f"\nPaper: all occupancies < {PAPER_OCCUPANCY_BUDGET} cycles; "
          f"ours, worst occupancy: {worst:.0f}")
    repl = next(b for b in bars if b.config == "repl")
    replmc = next(b for b in bars if b.config == "replMC")
    print(f"Paper: Repl response ~30, ReplMC ~2x that; "
          f"ours: {repl.response:.0f} vs {replmc.response:.0f}")


if __name__ == "__main__":
    main()
