"""Shape validation: check every qualitative claim of the paper at once.

Absolute numbers are not reproducible across a different substrate; the
*shapes* are.  This module encodes each claim the paper's evaluation makes
as a checkable predicate over the experiment results and prints a PASS/FAIL
report — the programmatic backbone of EXPERIMENTS.md.

Run with ``python -m repro.experiments.validate [--scale S]``.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Callable

from repro.experiments import fig5, fig6, fig7, fig8, fig9, fig10, fig11
from repro.experiments import table1, table3
from repro.experiments.common import resolve_scale


@dataclass
class Claim:
    """One testable statement from the paper."""

    source: str
    statement: str
    passed: bool
    measured: str


def _fig7_claims(scale: float) -> list[Claim]:
    result = fig7.run(scale=scale)
    avg = result["avg_speedups"]
    bars = result["bars"]

    def app_speedup(app: str, config: str) -> float:
        return next(b.speedup for b in bars[app] if b.config == config)

    claims = [
        Claim("Fig 7 / §5.2", "Repl outperforms Base and Chain on average",
              avg["repl"] >= avg["chain"] - 0.02 >= avg["base"] - 0.04,
              f"base={avg['base']:.2f} chain={avg['chain']:.2f} "
              f"repl={avg['repl']:.2f}"),
        Claim("Fig 7", "Repl delivers a clear average speedup (paper: 1.32)",
              1.15 <= avg["repl"] <= 1.60, f"repl={avg['repl']:.2f}"),
        Claim("Fig 7", "Conven4+Repl is at least as good as either alone "
              "(paper: 1.46)",
              avg["conven4+repl"] >= max(avg["repl"], avg["conven4"]) - 0.02,
              f"conven4+repl={avg['conven4+repl']:.2f}"),
        Claim("Fig 7 / Table 5", "Customisation raises the average further "
              "(paper: 1.53)",
              avg["custom"] >= avg["conven4+repl"] - 0.01,
              f"custom={avg['custom']:.2f}"),
        Claim("§5.2", "Conven4 is ineffective on the purely irregular "
              "applications (Mcf, Tree)",
              abs(app_speedup("mcf", "conven4") - 1.0) < 0.05
              and abs(app_speedup("tree", "conven4") - 1.0) < 0.05,
              f"mcf={app_speedup('mcf', 'conven4'):.2f} "
              f"tree={app_speedup('tree', 'conven4'):.2f}"),
        Claim("§5.2", "Conven4 performs well on CG (sequential patterns "
              "dominate)",
              app_speedup("cg", "conven4") > 1.3,
              f"cg={app_speedup('cg', 'conven4'):.2f}"),
        Claim("§5.2 / Fig 9", "The conflict-limited application (Sparse) is "
              "among the smallest Repl speedups",
              "sparse" in sorted(bars,
                                 key=lambda a: app_speedup(a, "repl"))[:3],
              "smallest: " + ", ".join(
                  sorted(bars, key=lambda a: app_speedup(a, "repl"))[:3])),
        Claim("§5.2 custom CG", "CG's Seq1+Repl-verbose customisation beats "
              "plain Conven4+Repl",
              app_speedup("cg", "custom")
              >= app_speedup("cg", "conven4+repl") - 0.01,
              f"custom={app_speedup('cg', 'custom'):.2f} vs "
              f"c4+repl={app_speedup('cg', 'conven4+repl'):.2f}"),
        Claim("§5.2 custom MST", "NumLevels=4 helps MST",
              app_speedup("mst", "custom")
              >= app_speedup("mst", "conven4+repl") - 0.01,
              f"custom={app_speedup('mst', 'custom'):.2f}"),
    ]
    return claims


def _fig5_claims(scale: float) -> list[Claim]:
    result = fig5.run(scale=scale)
    avg = result["averages"]
    apps = result["apps"]
    return [
        Claim("Fig 5", "Pair-based level-1 prediction is high on average "
              "(paper: Base 82%)",
              avg["base"][0] > 0.55, f"base L1={avg['base'][0]:.2f}"),
        Claim("Fig 5", "Repl keeps predicting across levels (paper: 77%/73%)",
              avg["repl"][1] > 0.5 and avg["repl"][2] > 0.45,
              f"repl L2={avg['repl'][1]:.2f} L3={avg['repl'][2]:.2f}"),
        Claim("Fig 5", "Repl beats Chain at deeper levels (true MRU)",
              avg["repl"][2] >= avg["chain"][2],
              f"repl L3={avg['repl'][2]:.2f} chain L3={avg['chain'][2]:.2f}"),
        Claim("Fig 5", "Sequential predictors see nothing on Mcf and Tree",
              apps["mcf"]["seq4"].levels[0] < 0.1
              and apps["tree"]["seq4"].levels[0] < 0.1,
              f"mcf={apps['mcf']['seq4'].levels[0]:.2f} "
              f"tree={apps['tree']['seq4'].levels[0]:.2f}"),
        Claim("Fig 5", "Sequential prediction is near-perfect on CG",
              apps["cg"]["seq4"].levels[0] > 0.9,
              f"cg seq4 L1={apps['cg']['seq4'].levels[0]:.2f}"),
    ]


def _fig6_claims(scale: float) -> list[Claim]:
    result = fig6.run(scale=scale)
    avg = result["average"]
    return [
        Claim("Fig 6", "The [200,280) round-trip bin dominates on average "
              "(paper: ~60%)",
              avg[2] == max(avg), f"bins={tuple(round(f, 2) for f in avg)}"),
    ]


def _fig8_claims(scale: float) -> list[Claim]:
    result = fig8.run(scale=scale)
    dram = result["avg_speedups"]["conven4+repl"]
    nb = result["avg_speedups"]["conven4+replMC"]
    return [
        Claim("Fig 8", "North Bridge placement loses only a little "
              "(paper: 1.46 -> 1.41)",
              nb >= dram - 0.12 and nb <= dram + 0.02,
              f"dram={dram:.2f} nb={nb:.2f}"),
    ]


def _fig9_claims(scale: float) -> list[Claim]:
    result = fig9.run(scale=scale, configs=("base", "repl"))
    repl = result["groups"]["repl"]["avg-other-7"]
    base = result["groups"]["base"]["avg-other-7"]
    return [
        Claim("Fig 9", "Repl's coverage well exceeds Base's (paper: 0.74 "
              "vs ~0.15)",
              repl.coverage > base.coverage + 0.1,
              f"repl={repl.coverage:.2f} base={base.coverage:.2f}"),
        Claim("Fig 9", "Repl's coverage comes with useless prefetches "
              "(Replaced + Redundant)",
              repl.replaced + repl.redundant > 0.05,
              f"replaced+redundant={repl.replaced + repl.redundant:.2f}"),
    ]


def _fig10_claims(scale: float) -> list[Claim]:
    bars = {b.config: b for b in fig10.run(scale=scale)}
    return [
        Claim("Fig 10", "Every occupancy is below 200 cycles (the Fig 6 "
              "inter-miss budget)",
              all(b.occupancy < 200 for b in bars.values()),
              ", ".join(f"{c}={b.occupancy:.0f}" for c, b in bars.items())),
        Claim("Fig 10", "Repl has the lowest response time (paper: ~30)",
              bars["repl"].response <= min(b.response for b in bars.values()) + 1,
              f"repl={bars['repl'].response:.0f}"),
        Claim("Fig 10", "Chain's response is the highest of the three "
              "algorithms",
              bars["chain"].response >= max(bars["base"].response,
                                            bars["repl"].response),
              f"chain={bars['chain'].response:.0f}"),
        Claim("Fig 10", "North Bridge placement roughly doubles Repl's "
              "response",
              1.3 * bars["repl"].response <= bars["replMC"].response
              <= 3.5 * bars["repl"].response,
              f"repl={bars['repl'].response:.0f} "
              f"replMC={bars['replMC'].response:.0f}"),
    ]


def _fig11_claims(scale: float) -> list[Claim]:
    bars = {b.config: b for b in fig11.run(scale=scale)}
    worst = max(bars.values(), key=lambda b: b.utilization)
    return [
        Claim("Fig 11", "Bus utilisation stays tolerable (paper: <= ~36%)",
              worst.utilization < 0.6,
              f"worst={worst.utilization:.2f} ({worst.config})"),
        Claim("Fig 11", "Only a small part is directly prefetch traffic "
              "(paper: ~6%)",
              worst.prefetch_part < 0.2,
              f"prefetch-direct={worst.prefetch_part:.2f}"),
    ]


def _static_claims() -> list[Claim]:
    return [
        Claim("Table 1", "Generated algorithm traits match the paper",
              table1.verify_against_paper(table1.run()), "see table1"),
        Claim("Table 3", "Round-trip latencies match the paper exactly",
              table3.verify_round_trips(), "208/243, 21/56, 65/100"),
    ]


SECTIONS: list[Callable[[float], list[Claim]]] = [
    _fig7_claims, _fig5_claims, _fig6_claims, _fig8_claims,
    _fig9_claims, _fig10_claims, _fig11_claims,
]


def run(scale: float | None = None) -> list[Claim]:
    scale = resolve_scale(scale)
    claims = _static_claims()
    for section in SECTIONS:
        claims.extend(section(scale))
    return claims


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=None)
    args = parser.parse_args(argv)
    claims = run(scale=args.scale)
    failures = 0
    for claim in claims:
        status = "PASS" if claim.passed else "FAIL"
        if not claim.passed:
            failures += 1
        print(f"[{status}] {claim.source:16s} {claim.statement}")
        print(f"       measured: {claim.measured}")
    print(f"\n{len(claims) - failures}/{len(claims)} claims reproduced")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
