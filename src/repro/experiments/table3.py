"""Table 3: parameters of the simulated architecture.

Prints the configuration the simulator actually uses and checks the derived
round-trip identities against the paper's numbers.
"""

from __future__ import annotations

from repro.experiments.common import format_table
from repro.params import (
    MAIN_L1,
    MAIN_L2,
    MAIN_PROC,
    MEM_PROC,
    MEMPROC_L1,
    MEMORY,
    QUEUES,
    MemProcLocation,
)


def run() -> dict[str, list[tuple[str, str]]]:
    """Grouped (parameter, value) pairs, all derived from live config."""
    return {
        "Main processor": [
            ("Issue width", f"{MAIN_PROC.issue_width}-issue dynamic"),
            ("Frequency", f"{MAIN_PROC.frequency_ghz} GHz"),
            ("Int/FP/LdSt FUs",
             f"{MAIN_PROC.int_fus}, {MAIN_PROC.fp_fus}, {MAIN_PROC.ldst_fus}"),
            ("Pending ld, st",
             f"{MAIN_PROC.pending_loads}, {MAIN_PROC.pending_stores}"),
            ("Branch penalty", f"{MAIN_PROC.branch_penalty} cycles"),
        ],
        "Memory processor": [
            ("Issue width", f"{MEM_PROC.issue_width}-issue dynamic"),
            ("Frequency", f"{int(MEM_PROC.frequency_ghz * 1000)} MHz"),
            ("Int/FP/LdSt FUs",
             f"{MEM_PROC.int_fus}, {MEM_PROC.fp_fus}, {MEM_PROC.ldst_fus}"),
            ("Pending ld, st",
             f"{MEM_PROC.pending_loads}, {MEM_PROC.pending_stores}"),
            ("Branch penalty", f"{MEM_PROC.branch_penalty} cycles"),
        ],
        "Main processor memory hierarchy": [
            ("L1 data", f"write-back, {MAIN_L1.size_bytes // 1024} KB, "
                        f"{MAIN_L1.assoc} way, {MAIN_L1.line_bytes}-B line, "
                        f"{MAIN_L1.hit_cycles}-cycle hit RT"),
            ("L2 data", f"write-back, {MAIN_L2.size_bytes // 1024} KB, "
                        f"{MAIN_L2.assoc} way, {MAIN_L2.line_bytes}-B line, "
                        f"{MAIN_L2.hit_cycles}-cycle hit RT"),
            ("RT memory latency",
             f"{MEMORY.main_round_trip(False)} cycles (row miss), "
             f"{MEMORY.main_round_trip(True)} cycles (row hit)"),
            ("Memory bus", "split-transaction, 8 B, 400 MHz, 3.2 GB/s peak"),
        ],
        "Memory processor memory hierarchy": [
            ("L1 data", f"write-back, {MEMPROC_L1.size_bytes // 1024} KB, "
                        f"{MEMPROC_L1.assoc} way, {MEMPROC_L1.line_bytes}-B "
                        f"line, {MEMPROC_L1.hit_cycles}-cycle hit RT"),
            ("In North Bridge RT",
             f"{MEMORY.memproc_round_trip(MemProcLocation.NORTH_BRIDGE, False)}"
             f" cycles (row miss), "
             f"{MEMORY.memproc_round_trip(MemProcLocation.NORTH_BRIDGE, True)}"
             f" cycles (row hit)"),
            ("NB prefetch request to DRAM",
             f"{MEMORY.nb_prefetch_request_delay} cycles"),
            ("In DRAM RT",
             f"{MEMORY.memproc_round_trip(MemProcLocation.DRAM, False)} cycles"
             f" (row miss), "
             f"{MEMORY.memproc_round_trip(MemProcLocation.DRAM, True)} cycles"
             f" (row hit)"),
        ],
        "DRAM and queues": [
            ("Channels", f"{MEMORY.num_channels} x 2 B, 800 MHz "
                         f"(3.2 GB/s total)"),
            ("Banks per channel", str(MEMORY.banks_per_channel)),
            ("Row buffer", f"{MEMORY.row_bytes} B"),
            ("Queues 1-6 depth", str(QUEUES.queue_depth)),
            ("Filter module", f"{QUEUES.filter_entries} entries, FIFO"),
        ],
    }


#: Paper values the identities must hit.
PAPER_ROUND_TRIPS = {
    "main": (243, 208),
    "dram": (56, 21),
    "north_bridge": (100, 65),
}


def verify_round_trips() -> bool:
    return (
        (MEMORY.main_round_trip(False), MEMORY.main_round_trip(True))
        == PAPER_ROUND_TRIPS["main"]
        and (MEMORY.memproc_round_trip(MemProcLocation.DRAM, False),
             MEMORY.memproc_round_trip(MemProcLocation.DRAM, True))
        == PAPER_ROUND_TRIPS["dram"]
        and (MEMORY.memproc_round_trip(MemProcLocation.NORTH_BRIDGE, False),
             MEMORY.memproc_round_trip(MemProcLocation.NORTH_BRIDGE, True))
        == PAPER_ROUND_TRIPS["north_bridge"]
    )


def main() -> None:
    for group, pairs in run().items():
        print(format_table(["Parameter", "Value"], pairs, title=group))
        print()
    print(f"Round trips match paper Table 3: {verify_round_trips()}")


if __name__ == "__main__":
    main()
