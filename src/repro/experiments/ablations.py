"""Ablation studies for the design choices DESIGN.md calls out.

The paper motivates each mechanism qualitatively; these sweeps quantify
them on our reproduction:

* ``num_levels``    — how far ahead Replicated prefetches (the Table 5
  customisation sets 4 for MST/Mcf; Section 3.3.3 discusses the trade-off);
* ``num_succ``      — successor-list width per level;
* ``num_rows``      — correlation-table size (the Table 2 sizing rule);
* ``filter``        — the Filter module (Figure 3): how many duplicate
  prefetches it absorbs and what that is worth;
* ``queue_depth``   — queue 2/3 depth (Table 3 sets 16): ULMT drop rate;
* ``rob``           — main-processor run-ahead (model sensitivity, not a
  paper knob: shows the NoPref baseline's MLP assumption).

Each sweep returns a list of (value, speedup, extra) tuples against the
same NoPref baseline.  Run as ``python -m repro.experiments.ablations``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.experiments.common import (
    all_apps,
    cached_run,
    fmt,
    format_table,
    resolve_scale,
)
from repro.params import CONVEN4_PARAMS
from repro.sim.config import SystemConfig
from repro.sim.driver import run_simulation

#: The irregular applications the ablations focus on (the pair-based
#: prefetcher's home turf, per the paper).
DEFAULT_APPS = ("mcf", "mst")


@dataclass(frozen=True)
class AblationPoint:
    """One swept configuration's outcome."""

    value: object
    speedup: float
    coverage: float
    detail: str = ""


def _speedup(app: str, config: SystemConfig, scale: float) -> tuple[float, "object"]:
    baseline = cached_run(app, "nopref", scale)
    result = run_simulation(app, config, scale=scale)
    return baseline.execution_time / result.execution_time, result


def sweep_num_levels(app: str, scale: float | None = None,
                     levels: tuple[int, ...] = (1, 2, 3, 4, 5)) -> list[AblationPoint]:
    """Replicated with NumLevels swept (Table 5 sets 4 for MST/Mcf)."""
    scale = resolve_scale(scale)
    points = []
    for nl in levels:
        config = SystemConfig(name=f"repl-l{nl}",
                              ulmt_algorithm=f"repl@levels={nl}")
        speedup, result = _speedup(app, config, scale)
        points.append(AblationPoint(nl, speedup, result.coverage(),
                                    detail=f"occ={result.ulmt_timing.avg_occupancy:.0f}"))
    return points


def sweep_num_succ(app: str, scale: float | None = None,
                   succs: tuple[int, ...] = (1, 2, 4)) -> list[AblationPoint]:
    """Replicated successor-list width per level."""
    scale = resolve_scale(scale)
    points = []
    for ns in succs:
        config = SystemConfig(name=f"repl-s{ns}",
                              ulmt_algorithm=f"repl@succ={ns}")
        speedup, result = _speedup(app, config, scale)
        points.append(AblationPoint(ns, speedup, result.coverage()))
    return points


def sweep_num_rows(app: str, scale: float | None = None,
                   rows: tuple[int, ...] = (1024, 4096, 16384, 65536)
                   ) -> list[AblationPoint]:
    """Correlation-table size: undersized tables thrash rows (Table 2)."""
    scale = resolve_scale(scale)
    points = []
    for nr in rows:
        config = SystemConfig(name=f"repl-r{nr}", ulmt_algorithm="repl",
                              num_rows=nr)
        speedup, result = _speedup(app, config, scale)
        points.append(AblationPoint(nr, speedup, result.coverage()))
    return points


def sweep_filter(app: str, scale: float | None = None,
                 sizes: tuple[int, ...] = (1, 8, 32, 128)) -> list[AblationPoint]:
    """Filter module size (Table 3 default: 32 entries)."""
    scale = resolve_scale(scale)
    points = []
    for entries in sizes:
        config = SystemConfig(name=f"repl-f{entries}", ulmt_algorithm="repl",
                              filter_entries=entries)
        speedup, result = _speedup(app, config, scale)
        dropped = result.ulmt and getattr(result.ulmt, "prefetches_filtered", 0)
        points.append(AblationPoint(entries, speedup, result.coverage(),
                                    detail=f"filtered={dropped}"))
    return points


def sweep_queue_depth(app: str, scale: float | None = None,
                      depths: tuple[int, ...] = (2, 4, 16, 64)) -> list[AblationPoint]:
    """Queue 2/3 depth (Table 3 default: 16): drop rate under bursts."""
    scale = resolve_scale(scale)
    points = []
    for depth in depths:
        config = SystemConfig(name=f"repl-q{depth}", ulmt_algorithm="repl",
                              queue_depth=depth)
        speedup, result = _speedup(app, config, scale)
        dropped = result.ulmt.misses_dropped if result.ulmt else 0
        points.append(AblationPoint(depth, speedup, result.coverage(),
                                    detail=f"dropped={dropped}"))
    return points


def sweep_rob(app: str, scale: float | None = None,
              robs: tuple[int, ...] = (4, 8, 16, 32)) -> list[AblationPoint]:
    """Model sensitivity: the baseline core's run-ahead window."""
    scale = resolve_scale(scale)
    points = []
    for rob in robs:
        nopref = run_simulation(app, SystemConfig(name=f"nopref-rob{rob}",
                                                  rob_refs=rob), scale=scale)
        repl = run_simulation(app, SystemConfig(name=f"repl-rob{rob}",
                                                ulmt_algorithm="repl",
                                                rob_refs=rob), scale=scale)
        points.append(AblationPoint(
            rob, nopref.execution_time / repl.execution_time,
            repl.coverage(),
            detail=f"nopref={nopref.execution_time:,}"))
    return points


def sweep_memory_latency(app: str, scale: float | None = None,
                         extra_fixed: tuple[int, ...] = (0, 100, 200)
                         ) -> list[AblationPoint]:
    """What-if: slower main memory (larger tSystem).

    The paper's latencies are 2002-era; this sweep adds cycles to the fixed
    portion of the round trip to show how the value of far-ahead
    prefetching grows with the processor-memory gap.
    """
    from repro.params import MemoryParams
    from repro.sim.system import System
    from repro.workloads.registry import get_trace

    scale = resolve_scale(scale)
    trace = get_trace(app, scale=scale)
    points = []
    for extra in extra_fixed:
        params = MemoryParams(main_fixed=96 + extra)
        nopref = System(SystemConfig(name="nopref"), params).run(trace)
        repl = System(SystemConfig(name="repl", ulmt_algorithm="repl"),
                      params).run(trace)
        points.append(AblationPoint(
            96 + extra,
            nopref.execution_time / repl.execution_time,
            repl.coverage(),
            detail=f"RT={208 + extra}"))
    return points


SWEEPS: dict[str, Callable[..., list[AblationPoint]]] = {
    "num_levels": sweep_num_levels,
    "num_succ": sweep_num_succ,
    "num_rows": sweep_num_rows,
    "filter": sweep_filter,
    "queue_depth": sweep_queue_depth,
    "rob": sweep_rob,
    "memory_latency": sweep_memory_latency,
}


def run(scale: float | None = None,
        apps: tuple[str, ...] = DEFAULT_APPS,
        sweeps: tuple[str, ...] = tuple(SWEEPS)) -> dict:
    results: dict[str, dict[str, list[AblationPoint]]] = {}
    for name in sweeps:
        results[name] = {app: SWEEPS[name](app, scale) for app in apps}
    return results


def main() -> None:
    results = run()
    for sweep_name, per_app in results.items():
        for app, points in per_app.items():
            rows = [(str(p.value), fmt(p.speedup), fmt(p.coverage), p.detail)
                    for p in points]
            print(format_table(
                ["value", "speedup", "coverage", "detail"], rows,
                title=f"Ablation {sweep_name} — {app}"))
            print()


if __name__ == "__main__":
    main()
