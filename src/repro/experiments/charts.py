"""Terminal rendering of the paper's figures.

The original figures are stacked/grouped bar charts; these helpers render
the same data as Unicode bar charts so ``python -m repro.experiments.figN``
output is visually comparable with the paper, without any plotting
dependency.
"""

from __future__ import annotations

from typing import Mapping, Sequence

#: Fill characters for stacked segments, in drawing order.
SEGMENT_CHARS = ("█", "▓", "▒", "░", "·")


def hbar(value: float, max_value: float, width: int = 40,
         char: str = "█") -> str:
    """One horizontal bar scaled to ``width`` characters."""
    if max_value <= 0:
        return ""
    filled = int(round(width * min(value, max_value) / max_value))
    return char * filled


def bar_chart(items: Sequence[tuple[str, float]], width: int = 40,
              title: str = "", unit: str = "") -> str:
    """Simple labelled horizontal bar chart."""
    if not items:
        return title
    max_value = max(v for _, v in items) or 1.0
    label_width = max(len(label) for label, _ in items)
    lines = [title] if title else []
    for label, value in items:
        bar = hbar(value, max_value, width)
        lines.append(f"{label:>{label_width}s} |{bar:<{width}s}| "
                     f"{value:.2f}{unit}")
    return "\n".join(lines)


def stacked_bar_chart(items: Sequence[tuple[str, Mapping[str, float]]],
                      segments: Sequence[str], width: int = 40,
                      title: str = "", total_of: float | None = None) -> str:
    """Stacked horizontal bars (e.g. Busy/UptoL2/BeyondL2 of Figure 7).

    ``segments`` orders the stack; each bar's segments are drawn with
    successive fill characters and a legend line is appended.
    """
    if not items:
        return title
    totals = [sum(parts.get(s, 0.0) for s in segments) for _, parts in items]
    max_total = total_of or (max(totals) or 1.0)
    label_width = max(len(label) for label, _ in items)
    lines = [title] if title else []
    for (label, parts), total in zip(items, totals):
        bar = ""
        for i, segment in enumerate(segments):
            seg_chars = int(round(width * parts.get(segment, 0.0) / max_total))
            bar += SEGMENT_CHARS[i % len(SEGMENT_CHARS)] * seg_chars
        bar = bar[:width]
        lines.append(f"{label:>{label_width}s} |{bar:<{width}s}| "
                     f"{total:.2f}")
    legend = "  ".join(f"{SEGMENT_CHARS[i % len(SEGMENT_CHARS)]} {s}"
                       for i, s in enumerate(segments))
    lines.append(f"{'':>{label_width}s}  {legend}")
    return "\n".join(lines)
