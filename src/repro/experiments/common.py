"""Shared infrastructure for the table/figure reproduction scripts.

Every experiment module exposes ``run(scale=...)`` returning plain data and
``main()`` printing the paper-style rows; ``python -m repro.experiments.figN``
regenerates figure N.  Results of expensive (workload, config) simulations
are cached per process so that figures sharing runs (7, 8, 9, 10, 11) do
not recompute them.
"""

from __future__ import annotations

from typing import Iterable

from repro.sim.config import SystemConfig, custom_config, preset
from repro.sim.driver import run_simulation
from repro.sim.stats import SimResult
from repro.workloads.registry import list_workloads

#: Default evaluation scale.  1.0 reproduces the shapes; smaller values are
#: used by the test suite and the pytest-benchmark harness.  Experiments
#: resolve their ``scale=None`` arguments against this at call time, so
#: ``runall --scale`` works as a process-wide knob.
DEFAULT_SCALE = 1.0

#: Keyed by (app, preset-name-or-full-config, scale).  Ad-hoc
#: SystemConfig instances key on the frozen config itself, not its name:
#: two different configs may share a preset's ``name`` (e.g. a fault-plan
#: variant of "repl"), and a name-based key would hand one of them the
#: other's cached result.
_RESULT_CACHE: dict[tuple[str, str | SystemConfig, float], SimResult] = {}


def resolve_scale(scale: float | None) -> float:
    """Turn an experiment's ``scale=None`` into the current default."""
    return DEFAULT_SCALE if scale is None else scale


def cached_run(app: str, config: str | SystemConfig,
               scale: float | None = None) -> SimResult:
    """Run (or fetch) one simulation; ``config`` may be a preset name,
    ``"custom"``, or a full :class:`SystemConfig`."""
    scale = resolve_scale(scale)
    if isinstance(config, SystemConfig):
        key = (app, config, scale)
        resolved = config
    else:
        resolved = custom_config(app) if config == "custom" else preset(config)
        key = (app, config, scale)
    if key not in _RESULT_CACHE:
        # repro-lint: disable=DET006 -- intentional per-process memo of
        # deterministic (app, config, scale) results shared across figures
        _RESULT_CACHE[key] = run_simulation(app, resolved, scale=scale)
    return _RESULT_CACHE[key]


def clear_result_cache() -> None:
    _RESULT_CACHE.clear()  # repro-lint: disable=DET006 -- cache owner


def all_apps() -> list[str]:
    return list_workloads()


def format_table(headers: list[str], rows: Iterable[Iterable],
                 title: str = "") -> str:
    """Fixed-width text table, similar to how the paper prints its data."""
    rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def fmt(value: float, digits: int = 2) -> str:
    return f"{value:.{digits}f}"


def pct(value: float) -> str:
    return f"{100 * value:.0f}%"
