"""Shared infrastructure for the table/figure reproduction scripts.

Every experiment module exposes ``run(scale=...)`` returning plain data and
``main()`` printing the paper-style rows; ``python -m repro.experiments.figN``
regenerates figure N.  Results of expensive (workload, config) simulations
are cached per process so that figures sharing runs (7, 8, 9, 10, 11) do
not recompute them, and — when a persistent cache is installed via
:func:`set_disk_cache` — across processes and invocations too.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterable, Iterator, Optional

from repro.perf import pool as _pool
from repro.perf.cache import ResultCache
from repro.sim.config import SystemConfig
from repro.sim.stats import SimResult
from repro.workloads.registry import list_workloads

#: Default evaluation scale.  1.0 reproduces the shapes; smaller values are
#: used by the test suite and the pytest-benchmark harness.  Experiments
#: resolve their ``scale=None`` arguments against this at call time;
#: :func:`use_scale` overrides it for a scoped block (``runall --scale``)
#: without mutating module state from the outside.
DEFAULT_SCALE = 1.0

#: Scoped overrides of :data:`DEFAULT_SCALE` (innermost last).  Only ever
#: mutated by :func:`use_scale`, which restores it on exit.
_SCALE_OVERRIDES: list[float] = []

#: Keyed by (app, preset-name-or-full-config, scale).  Ad-hoc
#: SystemConfig instances key on the frozen config itself, not its name:
#: two different configs may share a preset's ``name`` (e.g. a fault-plan
#: variant of "repl"), and a name-based key would hand one of them the
#: other's cached result.
_RESULT_CACHE: dict[tuple[str, str | SystemConfig, float], SimResult] = {}

#: Per-process memo of the expensive analyses (Figure 5 rows, Table 2
#: sizings), keyed by every input that shapes them.
_ANALYSIS_CACHE: dict[tuple, object] = {}

#: Holder for the optional persistent cache (empty or one element, managed
#: by :func:`set_disk_cache`).
_DISK_CACHE: list[ResultCache] = []


def resolve_scale(scale: float | None) -> float:
    """Turn an experiment's ``scale=None`` into the current default."""
    if scale is not None:
        return scale
    if _SCALE_OVERRIDES:
        return _SCALE_OVERRIDES[-1]
    return DEFAULT_SCALE


@contextmanager
def use_scale(scale: float | None) -> Iterator[float]:
    """Scoped override of the default scale (``runall --scale``).

    Nested overrides stack; the previous default is restored on exit even
    on error, so no caller can leak a changed scale into later code —
    unlike the old ``common.DEFAULT_SCALE = s`` mutation this replaces.
    """
    if scale is None:
        yield resolve_scale(None)
        return
    _SCALE_OVERRIDES.append(float(scale))  # repro-lint: disable=DET006 -- scoped override stack, popped in finally
    try:
        yield float(scale)
    finally:
        _SCALE_OVERRIDES.pop()  # repro-lint: disable=DET006 -- restores the stack pushed above


def set_disk_cache(cache: Optional[ResultCache]) -> Optional[ResultCache]:
    """Install (or with ``None`` remove) the persistent result cache.

    Returns the previously installed cache, so callers can restore it.
    """
    previous = _DISK_CACHE[0] if _DISK_CACHE else None
    _DISK_CACHE.clear()  # repro-lint: disable=PAR001,DET006 -- cache holder owner
    if cache is not None:
        _DISK_CACHE.append(cache)  # repro-lint: disable=PAR001,DET006 -- cache holder owner
    return previous


def get_disk_cache() -> Optional[ResultCache]:
    return _DISK_CACHE[0] if _DISK_CACHE else None


def _through_disk(task: "_pool.MatrixTask", compute) -> object:
    """Fetch ``task`` from the persistent cache, else compute and store."""
    disk = get_disk_cache()
    if disk is not None:
        hit = _pool._from_cache(task, disk)
        if hit is not None:
            return hit
    value = compute()
    if disk is not None:
        disk.put(task.kind, _pool.task_cache_key(task),
                 _pool.encode_payload(task, value))
    return value


def cached_run(app: str, config: str | SystemConfig,
               scale: float | None = None) -> SimResult:
    """Run (or fetch) one simulation; ``config`` may be a preset name,
    ``"custom"``, or a full :class:`SystemConfig`."""
    scale = resolve_scale(scale)
    key = (app, config, scale)
    if key not in _RESULT_CACHE:
        task = _pool.sim_task(app, config, scale)
        result = _through_disk(task, lambda: _pool.execute_task(task))
        # repro-lint: disable=DET006 -- intentional per-process memo of
        # deterministic (app, config, scale) results shared across figures
        _RESULT_CACHE[key] = result
    return _RESULT_CACHE[key]


def cached_figure5_row(app: str, scale: float | None = None,
                       predictors: tuple[str, ...] | None = None,
                       max_level: int = 3):
    """Figure 5 predictability row, memoised in-process and on disk."""
    from repro.analysis.prediction import PREDICTORS
    predictors = tuple(predictors if predictors is not None else PREDICTORS)
    scale = resolve_scale(scale)
    key = ("fig5", app, scale, predictors, max_level)
    if key not in _ANALYSIS_CACHE:
        task = _pool.fig5_task(app, scale, predictors, max_level)
        row = _through_disk(task, lambda: _pool.execute_task(task))
        # repro-lint: disable=DET006 -- intentional memo keyed by every
        # input that shapes the row; values never mutated after store
        _ANALYSIS_CACHE[key] = row
    return _ANALYSIS_CACHE[key]


def cached_table_sizing(app: str, scale: float | None = None):
    """Table 2 sizing for one application, memoised in-process and on disk."""
    scale = resolve_scale(scale)
    key = ("tablesize", app, scale)
    if key not in _ANALYSIS_CACHE:
        task = _pool.tablesize_task(app, scale)
        sizing = _through_disk(task, lambda: _pool.execute_task(task))
        # repro-lint: disable=DET006 -- intentional memo (see above)
        _ANALYSIS_CACHE[key] = sizing
    return _ANALYSIS_CACHE[key]


def install_prewarmed(tasks: "list[_pool.MatrixTask]",
                      results: list) -> int:
    """Seed the in-process memos with pool-computed results.

    Pairs each task with its result (as returned by
    :func:`repro.perf.pool.run_tasks`); ``None`` slots (failed tasks) are
    skipped and recomputed lazily by the serial path.  Returns how many
    results were installed.
    """
    installed = 0
    for task, result in zip(tasks, results):
        if result is None:
            continue
        if task.kind == _pool.KIND_SIM:
            key = (task.app, task.config, task.scale)
            _RESULT_CACHE[key] = result  # repro-lint: disable=DET006 -- cache owner
        elif task.kind in (_pool.KIND_TRACE, _pool.KIND_STREAM,
                           _pool.KIND_WINDOWS):
            # A traced cell's SimResult is identical to an untraced run of
            # the same cell (streamed and windowed variants included), so
            # it seeds the same memo the figures read.
            key = (task.app, task.config, task.scale)
            _RESULT_CACHE[key] = result.result  # repro-lint: disable=DET006 -- cache owner
        elif task.kind == _pool.KIND_FIG5:
            predictors, max_level = task.params
            akey = ("fig5", task.app, task.scale, tuple(predictors), max_level)
            _ANALYSIS_CACHE[akey] = result  # repro-lint: disable=DET006 -- cache owner
        elif task.kind == _pool.KIND_TABLESIZE:
            akey = ("tablesize", task.app, task.scale)
            _ANALYSIS_CACHE[akey] = result  # repro-lint: disable=DET006 -- cache owner
        else:
            continue
        installed += 1
    return installed


def clear_result_cache() -> None:
    _RESULT_CACHE.clear()  # repro-lint: disable=DET006 -- cache owner
    _ANALYSIS_CACHE.clear()  # repro-lint: disable=DET006 -- cache owner


def all_apps() -> list[str]:
    return list_workloads()


def format_table(headers: list[str], rows: Iterable[Iterable],
                 title: str = "") -> str:
    """Fixed-width text table, similar to how the paper prints its data."""
    rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def fmt(value: float, digits: int = 2) -> str:
    return f"{value:.{digits}f}"


def pct(value: float) -> str:
    return f"{100 * value:.0f}%"
