"""Figure 5: fraction of L2 misses correctly predicted per successor level.

Paper reference points (averages over the nine applications):
level 1 — Seq4 49%, Base 82%; levels 2/3 — Repl 77% / 73%, with Repl
outperforming Chain by a wide margin and Mcf/Tree showing ~0% for the
sequential predictors while CG is almost fully sequential.
"""

from __future__ import annotations

from repro.analysis.prediction import PREDICTORS
from repro.experiments.common import (
    all_apps,
    cached_figure5_row,
    format_table,
    pct,
    resolve_scale,
)

#: Paper's average values for quick comparison (level -> predictor -> frac).
PAPER_AVERAGES = {
    1: {"seq4": 0.49, "base": 0.82},
    2: {"repl": 0.77},
    3: {"repl": 0.73},
}


def run(scale: float | None = None, apps: list[str] | None = None,
        predictors: tuple[str, ...] = PREDICTORS) -> dict:
    """Returns {app: {predictor: PredictionResult}} plus an average row."""
    scale = resolve_scale(scale)
    apps = apps or all_apps()
    data = {app: cached_figure5_row(app, scale, predictors) for app in apps}
    averages = {}
    for p in predictors:
        level_avgs = tuple(
            sum(data[app][p].levels[k] for app in apps) / len(apps)
            for k in range(3))
        averages[p] = level_avgs
    return {"apps": data, "averages": averages}


def main() -> None:
    result = run()
    predictors = list(next(iter(result["apps"].values())).keys())
    for level in range(3):
        rows = []
        for app, row in result["apps"].items():
            rows.append([app] + [pct(row[p].levels[level])
                                 for p in predictors])
        rows.append(["Average"] + [pct(result["averages"][p][level])
                                   for p in predictors])
        print(format_table(["App"] + predictors, rows,
                           title=f"Figure 5 — Level {level + 1} prediction"))
        print()
    avg = result["averages"]
    print("Paper: level-1 Seq4 49%, Base 82%; Repl level-2 77%, level-3 73%")
    print(f"Ours:  level-1 Seq4 {pct(avg['seq4'][0])}, "
          f"Base {pct(avg['base'][0])}; "
          f"Repl level-2 {pct(avg['repl'][1])}, "
          f"level-3 {pct(avg['repl'][2])}")


if __name__ == "__main__":
    main()
