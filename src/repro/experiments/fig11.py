"""Figure 11: main memory bus utilisation.

For each configuration, total bus utilisation averaged over the nine
applications, split into the part attributable to prefetch traffic and the
rest (demand + write-backs, which grow "naturally" as execution shortens).

Paper reference: utilisation grows from ~20% (NoPref) to at most ~36%
(Conven4+Repl), with only ~6% directly attributable to prefetches —
memory-side prefetching adds only one-way traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    resolve_scale,
    all_apps,
    cached_run,
    format_table,
    pct,
)

CONFIGS = ("nopref", "conven4", "base", "chain", "repl", "conven4+repl",
           "conven4+replMC")

PAPER = {"nopref": 0.20, "conven4+repl": 0.36,
         "prefetch_direct_worst": 0.06}


@dataclass(frozen=True)
class Fig11Bar:
    config: str
    utilization: float
    prefetch_part: float

    @property
    def non_prefetch_part(self) -> float:
        return self.utilization - self.prefetch_part


def run(scale: float | None = None, apps: list[str] | None = None,
        configs: tuple[str, ...] = CONFIGS) -> list[Fig11Bar]:
    apps = apps or all_apps()
    bars = []
    for config in configs:
        utils, prefetch_parts = [], []
        for app in apps:
            result = cached_run(app, config, scale)
            utils.append(result.bus_utilization())
            prefetch_parts.append(result.bus_prefetch_utilization())
        n = len(apps)
        bars.append(Fig11Bar(config=config,
                             utilization=sum(utils) / n,
                             prefetch_part=sum(prefetch_parts) / n))
    return bars


def main() -> None:
    from repro.experiments.charts import stacked_bar_chart

    bars = run()
    rows = [(b.config, pct(b.utilization), pct(b.non_prefetch_part),
             pct(b.prefetch_part)) for b in bars]
    print(format_table(
        ["Config", "Bus utilization", "Demand + faster execution",
         "Due to prefetching"],
        rows, title="Figure 11 — main memory bus utilization (average)"))
    print(stacked_bar_chart(
        [(b.config, {"demand": b.non_prefetch_part,
                     "prefetch": b.prefetch_part}) for b in bars],
        ("demand", "prefetch"), total_of=1.0))
    nopref = next(b for b in bars if b.config == "nopref")
    worst = max(bars, key=lambda b: b.utilization)
    print(f"\nPaper: ~20% (NoPref) to ~36% worst case, ~6% prefetch-direct; "
          f"ours: {pct(nopref.utilization)} to {pct(worst.utilization)} "
          f"({worst.config}), prefetch-direct {pct(worst.prefetch_part)}")


if __name__ == "__main__":
    main()
