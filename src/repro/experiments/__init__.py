"""One module per table and figure of the paper's evaluation.

Run any of them as scripts, e.g. ``python -m repro.experiments.fig7``, or
everything at once with ``python -m repro.experiments.runall``.
"""

from repro.experiments import (  # noqa: F401
    ablations,
    charts,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    table1,
    table2,
    table3,
    table4,
    table5,
    validate,
)
from repro.experiments.common import (
    cached_run,
    clear_result_cache,
    format_table,
    resolve_scale,
)

__all__ = [
    "ablations", "charts", "validate",
    "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
    "table1", "table2", "table3", "table4", "table5",
    "cached_run", "clear_result_cache", "format_table", "resolve_scale",
]
