"""Figure 7: execution time under the different prefetching algorithms.

For every application the bar set is NoPref, Conven4, Base, Chain, Repl,
Conven4+Repl (plus Custom for CG/MST/Mcf), each bar split into Busy,
UptoL2, and BeyondL2 stall, normalised to NoPref.

Paper reference (average application speedups over NoPref):
Conven4 ~1.2 (17% time reduction), Base 1.06, Chain 1.14, **Repl 1.32**,
**Conven4+Repl 1.46**, and with the Table 5 customisations **1.53**.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.customization import CUSTOMIZATIONS
from repro.experiments.common import (
    resolve_scale,
    all_apps,
    cached_run,
    fmt,
    format_table,
)
from repro.sim.driver import arithmetic_mean

CONFIGS = ("nopref", "conven4", "base", "chain", "repl", "conven4+repl")

PAPER_AVG_SPEEDUPS = {
    "conven4": 1.20,
    "base": 1.06,
    "chain": 1.14,
    "repl": 1.32,
    "conven4+repl": 1.46,
    "custom": 1.53,
}


@dataclass(frozen=True)
class Fig7Bar:
    app: str
    config: str
    normalized_time: float
    busy: float
    uptol2: float
    beyondl2: float
    speedup: float


def run(scale: float | None = None, apps: list[str] | None = None,
        configs: tuple[str, ...] = CONFIGS,
        include_custom: bool = True) -> dict:
    apps = apps or all_apps()
    bars: dict[str, list[Fig7Bar]] = {}
    speedups: dict[str, list[float]] = {c: [] for c in configs}
    speedups["custom"] = []
    for app in apps:
        baseline = cached_run(app, "nopref", scale)
        base_time = baseline.execution_time
        app_bars = []
        app_configs = list(configs)
        if include_custom:
            app_configs.append("custom")
        for config in app_configs:
            result = cached_run(app, config, scale)
            bd = result.normalized_breakdown(base_time)
            bar = Fig7Bar(app=app, config=config,
                          normalized_time=result.execution_time / base_time,
                          busy=bd["busy"], uptol2=bd["uptol2"],
                          beyondl2=bd["beyondl2"],
                          speedup=base_time / result.execution_time)
            app_bars.append(bar)
            if config in speedups:
                speedups[config].append(bar.speedup)
        bars[app] = app_bars
    averages = {c: arithmetic_mean(v) for c, v in speedups.items() if v}
    return {"bars": bars, "avg_speedups": averages}


def main() -> None:
    from repro.experiments.charts import stacked_bar_chart

    result = run()
    for app, app_bars in result["bars"].items():
        rows = [(b.config, fmt(b.normalized_time), fmt(b.busy),
                 fmt(b.uptol2), fmt(b.beyondl2), fmt(b.speedup))
                for b in app_bars
                if b.config != "custom" or app in CUSTOMIZATIONS]
        print(format_table(
            ["Config", "Norm. time", "Busy", "UptoL2", "BeyondL2", "Speedup"],
            rows, title=f"Figure 7 — {app}"))
        chart_items = [(b.config, {"busy": b.busy, "uptol2": b.uptol2,
                                   "beyondl2": b.beyondl2})
                       for b in app_bars
                       if b.config != "custom" or app in CUSTOMIZATIONS]
        print(stacked_bar_chart(chart_items,
                                ("busy", "uptol2", "beyondl2"),
                                total_of=1.0))
        print()
    print("Average speedups over NoPref (paper -> ours):")
    for config, paper in PAPER_AVG_SPEEDUPS.items():
        ours = result["avg_speedups"].get(config)
        if ours is not None:
            print(f"  {config:14s} {paper:.2f} -> {ours:.2f}")


if __name__ == "__main__":
    main()
