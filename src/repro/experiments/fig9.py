"""Figure 9: breakdown of L2 misses and ULMT prefetches.

For Sparse, Tree, and the average of the other seven applications, stacks
Hits / DelayedHits / NonPrefMisses / Replaced / Redundant, normalised to
the original number of L2 misses.

Paper reference: Base and Chain have small coverage; **Repl reaches ~0.74
coverage** at the cost of useless prefetches (Replaced+Redundant ~50% of
the original misses) and some prefetch-induced conflict misses (~20%);
Sparse and Tree keep many NonPrefMisses due to cache conflicts, which is
why their Figure 7 speedups are the smallest.
"""

from __future__ import annotations

from repro.analysis.coverage import (
    CoverageBreakdown,
    average_breakdowns,
    breakdown_from_result,
)
from repro.experiments.common import (
    resolve_scale,
    all_apps,
    cached_run,
    fmt,
    format_table,
)

CONFIGS = ("base", "chain", "repl", "conven4+repl", "conven4+replMC")
HIGHLIGHTED_APPS = ("sparse", "tree")

PAPER_REPL_COVERAGE = 0.74


def run(scale: float | None = None, apps: list[str] | None = None,
        configs: tuple[str, ...] = CONFIGS) -> dict:
    apps = apps or all_apps()
    others = [a for a in apps if a not in HIGHLIGHTED_APPS]
    groups: dict[str, dict[str, CoverageBreakdown]] = {}
    for config in configs:
        per_app = {app: breakdown_from_result(cached_run(app, config, scale))
                   for app in apps}
        group: dict[str, CoverageBreakdown] = {}
        for app in HIGHLIGHTED_APPS:
            if app in per_app:
                group[app] = per_app[app]
        if others:
            group["avg-other-7"] = average_breakdowns(
                [per_app[a] for a in others], label="avg-other-7")
        groups[config] = group
    return {"groups": groups}


def main() -> None:
    result = run()
    for config, group in result["groups"].items():
        rows = [(label, fmt(b.hits), fmt(b.delayed_hits),
                 fmt(b.nonpref_misses), fmt(b.replaced), fmt(b.redundant),
                 fmt(b.coverage))
                for label, b in group.items()]
        print(format_table(
            ["Bar", "Hits", "DelayedHits", "NonPrefMisses", "Replaced",
             "Redundant", "Coverage"],
            rows, title=f"Figure 9 — {config}"))
        print()
    repl_avg = result["groups"]["repl"].get("avg-other-7")
    if repl_avg is not None:
        print(f"Paper: Repl coverage ~{PAPER_REPL_COVERAGE}; "
              f"ours (avg of other 7): {repl_avg.coverage:.2f}")


if __name__ == "__main__":
    main()
