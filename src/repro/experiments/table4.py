"""Table 4: parameter values used for the different algorithms."""

from __future__ import annotations

from repro.experiments.common import format_table
from repro.params import (
    BASE_PARAMS,
    CHAIN_PARAMS,
    CONVEN4_PARAMS,
    REPL_PARAMS,
    SEQ1_PARAMS,
    SEQ4_PARAMS,
)


def run() -> list[tuple[str, str, str, str]]:
    return [
        ("Base", "Base", "Software in memory as ULMT",
         f"NumSucc = {BASE_PARAMS.num_succ}, Assoc = {BASE_PARAMS.assoc}"),
        ("Chain", "Chain", "Software in memory as ULMT",
         f"NumSucc = {CHAIN_PARAMS.num_succ}, Assoc = {CHAIN_PARAMS.assoc}, "
         f"NumLevels = {CHAIN_PARAMS.num_levels}"),
        ("Replicated", "Repl", "Software in memory as ULMT",
         f"NumSucc = {REPL_PARAMS.num_succ}, Assoc = {REPL_PARAMS.assoc}, "
         f"NumLevels = {REPL_PARAMS.num_levels}"),
        ("Sequential 1-Stream", "Seq1", "Software in memory as ULMT",
         f"NumSeq = {SEQ1_PARAMS.num_seq}, NumPref = {SEQ1_PARAMS.num_pref}"),
        ("Sequential 4-Streams", "Seq4", "Software in memory as ULMT",
         f"NumSeq = {SEQ4_PARAMS.num_seq}, NumPref = {SEQ4_PARAMS.num_pref}"),
        ("Sequential 4-Streams", "Conven4", "Hardware in L1 of main processor",
         f"NumSeq = {CONVEN4_PARAMS.num_seq}, "
         f"NumPref = {CONVEN4_PARAMS.num_pref}"),
    ]


def main() -> None:
    print(format_table(
        ["Prefetching algorithm", "Name", "Implementation", "Parameters"],
        run(), title="Table 4: algorithm parameter values"))


if __name__ == "__main__":
    main()
