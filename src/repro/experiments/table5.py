"""Table 5: per-application ULMT customisations (Conven4 stays on)."""

from __future__ import annotations

from repro.core.customization import CUSTOMIZATIONS
from repro.experiments.common import format_table


def run() -> list[tuple[str, str]]:
    rows = []
    grouped: dict[tuple[str, bool], list[str]] = {}
    for app, c in CUSTOMIZATIONS.items():
        grouped.setdefault((c.algorithm, c.verbose), []).append(app)
    for (algorithm, verbose), apps in grouped.items():
        description = algorithm.replace("@levels=", " with NumLevels = ")
        if verbose:
            description += " in Verbose mode"
        rows.append((", ".join(sorted(a.upper() for a in apps)), description))
    return rows


def main() -> None:
    print(format_table(["Application", "Customized ULMT algorithm"], run(),
                       title="Table 5: customizations (Conven4 is also on)"))


if __name__ == "__main__":
    main()
