"""Table 1: qualitative comparison of Base, Chain, and Replicated.

The rows are generated from the algorithm classes' ``traits`` metadata, so
the printed table cannot drift from the implementation.
"""

from __future__ import annotations

from repro.core.algorithms import TABLE1_TRAITS, AlgorithmTraits
from repro.experiments.common import format_table

PAPER = {
    "Base": ("1", True, "1", "1", "Low", "1"),
    "Chain": ("NumLevels", False, "NumLevels", "1", "High", "1"),
    "Replicated": ("NumLevels", True, "1", "NumLevels", "Low", "NumLevels"),
}


def run() -> list[AlgorithmTraits]:
    return list(TABLE1_TRAITS)


def verify_against_paper(traits: list[AlgorithmTraits]) -> bool:
    """True when every generated row matches the paper's Table 1."""
    for t in traits:
        expected = PAPER[t.name]
        actual = (t.levels_prefetched, t.true_mru_per_level,
                  t.prefetch_row_accesses, t.learning_row_accesses,
                  t.response_time, t.space_requirement)
        if actual != expected:
            return False
    return True


def main() -> None:
    traits = run()
    rows = [(t.name, t.levels_prefetched,
             "Yes" if t.true_mru_per_level else "No",
             t.prefetch_row_accesses, t.learning_row_accesses,
             t.response_time, t.space_requirement)
            for t in traits]
    print(format_table(
        ["Algorithm", "Levels prefetched", "True MRU/level",
         "Prefetch row accesses (SEARCH)", "Learning row accesses (no search)",
         "Response time", "Space"],
        rows, title="Table 1: pair-based correlation algorithms on a ULMT"))
    print(f"\nMatches paper Table 1: {verify_against_paper(traits)}")


if __name__ == "__main__":
    main()
