"""Table 2: applications and per-application correlation table sizes.

Reproduces the sizing procedure (NumRows = smallest power of two with < 5%
insertion replacement on a 2-way table) over our workload traces, and the
MB conversion using the paper's 20/12/28-byte rows.  Absolute NumRows
differ from the paper (our inputs are scaled), but the procedure, the
relative ordering (MST/Sparse large, Tree tiny), and the MB arithmetic are
the paper's.
"""

from __future__ import annotations

from repro.analysis.tablesize import TableSizing
from repro.experiments.common import (
    all_apps,
    cached_table_sizing,
    fmt,
    format_table,
    resolve_scale,
)
from repro.workloads.registry import workload_info


def run(scale: float | None = None,
        apps: list[str] | None = None) -> list[TableSizing]:
    scale = resolve_scale(scale)
    return [cached_table_sizing(app, scale) for app in (apps or all_apps())]


def main() -> None:
    sizings = run()
    rows = []
    for s in sizings:
        info = workload_info(s.app)
        rows.append((s.app, info.suite, info.problem,
                     f"{s.num_rows_k:.0f}K",
                     fmt(s.size_mbytes('base'), 2),
                     fmt(s.size_mbytes('chain'), 2),
                     fmt(s.size_mbytes('repl'), 2)))
    avg_rows = sum(s.num_rows for s in sizings) / len(sizings)
    rows.append(("Average", "", "", f"{avg_rows / 1024:.0f}K",
                 fmt(sum(s.size_mbytes('base') for s in sizings) / len(sizings), 2),
                 fmt(sum(s.size_mbytes('chain') for s in sizings) / len(sizings), 2),
                 fmt(sum(s.size_mbytes('repl') for s in sizings) / len(sizings), 2)))
    print(format_table(
        ["App", "Suite", "Problem", "NumRows",
         "Base MB", "Chain MB", "Repl MB"],
        rows, title="Table 2: correlation table sizing (<5% replacements, 2-way)"))


if __name__ == "__main__":
    main()
