"""Command-line interface: ``python -m repro``.

Subcommands::

    python -m repro run <app> <config> [--scale S]    one simulation
    python -m repro compare <app> [--scale S]         all configs for an app
    python -m repro list                              workloads + configs
    python -m repro experiments [--scale S]           regenerate everything
    python -m repro chaos <app> [--config C]          fault-injection sweep
    python -m repro lint [paths...]                   static analysis suite
    python -m repro trace <apps> [configs]            pipeline event tracing
    python -m repro timeline <trace.jsonl>            ASCII lane timeline
    python -m repro tracediff <a.jsonl> <b.jsonl>     explain stream diffs
    python -m repro campaign <apps> [configs]         crash-safe sweep driver
    python -m repro cache stats|verify|gc             cache integrity tools

``run`` accepts fault-injection options (see ``docs/ROBUSTNESS.md``)::

    python -m repro run mcf repl --faults "obs_drop=0.05,push_loss=0.1" \
        --fault-seed 7 --invariants
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

from repro.faults import FaultPlan
from repro.sim.config import PRESETS, custom_config, preset
from repro.sim.driver import run_simulation
from repro.workloads.registry import list_workloads


def _resolve_config(app: str, config_name: str, faults: str | None,
                    fault_seed: int, invariants: bool):
    """A preset name plus the fault-injection flags -> SystemConfig."""
    config = (custom_config(app) if config_name == "custom"
              else preset(config_name))
    if faults is not None:
        config = replace(config,
                         fault_plan=FaultPlan.parse(faults, seed=fault_seed))
    if invariants:
        config = replace(config, invariants=True)
    return config


def _cmd_list(_args) -> int:
    print("workloads:", ", ".join(list_workloads()))
    print("configs:  ", ", ".join(sorted(PRESETS)), "+ custom")
    return 0


def _cmd_run_multicore(args) -> int:
    """``run`` with --cores N: one coordinated bundle simulation."""
    from repro.multicore import run_multicore

    if args.config == "custom":
        print("run: the per-application 'custom' preset cannot scale to "
              "multicore bundles", file=sys.stderr)
        return 2
    config = _resolve_config(args.app, args.config, args.faults,
                             args.fault_seed, args.invariants)
    config = config.with_cores(args.cores, args.coordination)
    try:
        result = run_multicore(args.app, config, scale=args.scale)
    except ValueError as exc:
        print(f"run: {exc}", file=sys.stderr)
        return 2
    print(f"{result.workload} / {result.config_name} @ scale {args.scale} "
          f"— {result.num_cores} cores, {result.coordination} coordination")
    print(f"  makespan       : {result.execution_time:,} cycles")
    print(f"  bundle coverage: {result.coverage():.2f} "
          f"(accuracy {result.accuracy():.2f})")
    for grant, core in zip(result.allocation.grants, result.cores):
        print(f"  core {grant.core} ({grant.app:8s}): "
              f"{core.execution_time:>12,} cycles, "
              f"coverage {core.coverage():.2f}, "
              f"{grant.num_rows:,} table rows, "
              f"{grant.push_budget} pushes/window")
    return 0


def _cmd_run(args) -> int:
    if args.cores > 1:
        return _cmd_run_multicore(args)
    config = _resolve_config(args.app, args.config, args.faults,
                             args.fault_seed, args.invariants)
    result = run_simulation(args.app, config, scale=args.scale)
    bd = result.processor.breakdown()
    print(f"{args.app} / {result.config_name} @ scale {args.scale}")
    print(f"  execution time : {result.execution_time:,} cycles")
    print(f"  breakdown      : busy {bd['busy']:.2f}  "
          f"uptoL2 {bd['uptol2']:.2f}  beyondL2 {bd['beyondl2']:.2f}")
    print(f"  L2 misses      : {result.l2.nonpref_misses:,} remaining, "
          f"coverage {result.coverage():.2f}")
    print(f"  bus utilisation: {result.bus_utilization():.0%} "
          f"({result.bus_prefetch_utilization():.0%} prefetch)")
    if result.ulmt_timing is not None:
        t = result.ulmt_timing
        print(f"  ULMT           : response {t.avg_response:.0f}, "
              f"occupancy {t.avg_occupancy:.0f} cycles, IPC {t.ipc:.2f}")
    if config.fault_plan is not None:
        rb = result.robustness
        print(f"  faults injected: {result.faults.describe()}")
        print(f"  degradation    : filter drops {rb.filter_dropped:,}, "
              f"q2 overflow {rb.queue2_overflow_drops:,}, "
              f"q3 overflow {rb.queue3_overflow_drops:,}, "
              f"warm restarts {rb.ulmt_warm_restarts}, "
              f"learning shed {rb.degraded_observations:,} "
              f"({rb.watchdog_activations} watchdog activations)")
    if result.robustness.invariant_audits:
        print(f"  invariants     : {result.robustness.invariant_audits:,} "
              f"audits, all held")
    return 0


def _cmd_chaos(args) -> int:
    """Sweep fault intensity and print speedup degradation per algorithm.

    The (config, rate) grid plus the NoPref baseline are independent runs,
    so the sweep fans out through the parallel pool (``--jobs``) and its
    cells land in the same persistent cache as everything else — results
    are printed in grid order either way.

    With ``--windows N`` (the default; 0 disables) the faulted cells run
    under the metrics-only tracer and the sweep additionally reports
    coverage/accuracy per windowed-sampler bucket — *where in the run*
    each fault rate hurt, not just the end-to-end speedup.
    """
    from repro.perf.pool import run_tasks, sim_task, windows_task

    rates = [float(r) for r in args.rates.split(",")]
    configs = args.configs.split(",")
    windows = max(0, args.windows)
    cache = _build_cache(args)
    grid = [sim_task(args.app, "nopref", args.scale)]
    for name in configs:
        for rate in rates:
            config = _resolve_config(args.app, name, None,
                                     args.fault_seed, args.invariants)
            config = replace(config, fault_plan=FaultPlan.uniform(
                rate, seed=args.fault_seed))
            if windows:
                grid.append(windows_task(args.app, config, args.scale))
            else:
                grid.append(sim_task(args.app, config, args.scale))
    results = run_tasks(grid, jobs=args.jobs, cache=cache)
    if cache is not None:
        print(f"[cache] {cache.stats.describe()} in {cache.directory}",
              file=sys.stderr)
    if any(r is None for r in results):
        print("chaos sweep: one or more cells failed (see stderr)",
              file=sys.stderr)
        return 1
    baseline, cells = results[0], results[1:]
    cell_results = [c.result if windows else c for c in cells]
    header = "  ".join(f"{r:>7g}" for r in rates)
    print(f"chaos sweep — {args.app} @ scale {args.scale}, seed {args.fault_seed}")
    print(f"speedup over NoPref by uniform fault rate "
          f"(see FaultPlan.uniform):\n")
    print(f"{'config':14s}  {header}")
    for i, name in enumerate(configs):
        row = cell_results[i * len(rates):(i + 1) * len(rates)]
        print(f"{name:14s}  " + "  ".join(
            f"{baseline.execution_time / r.execution_time:7.3f}"
            for r in row))
    if windows:
        _print_chaos_windows(configs, rates, cells, windows)
    return 0


def _bucket_windows(windows: list, n: int) -> list:
    """Fold the sampler's window log into ``n`` coverage/accuracy buckets.

    Bucket ``i`` sums windows ``[i*L//n, (i+1)*L//n)`` — integer-only
    maths so serial, pooled, and warm-cache sweeps print byte-identical
    tables.  A bucket is ``None`` when no window landed in it, and each
    percentage is ``None`` when its denominator is zero.
    """
    length = len(windows)
    buckets = []
    for i in range(n):
        chunk = windows[i * length // n:(i + 1) * length // n]
        if not chunk:
            buckets.append(None)
            continue
        eliminated = sum(w[0] for w in chunk)
        original = sum(w[1] for w in chunk)
        arrived = sum(w[2] for w in chunk)
        coverage = (100 * eliminated // original) if original else None
        accuracy = (100 * eliminated // arrived) if arrived else None
        buckets.append((coverage, accuracy))
    return buckets


def _window_cells(values: list) -> str:
    return "  ".join("   --" if v is None else f"{v:>5d}" for v in values)


def _print_chaos_windows(configs: list, rates: list, cells: list,
                         n: int) -> None:
    """Per-window degradation block of the chaos sweep."""
    print(f"\nper-window degradation ({n} buckets over each run; "
          f"Δ rows vs rate {rates[0]:g}):")
    print(f"{'config/rate':18s}  {'metric':10s}  "
          + "  ".join(f"   b{i}" for i in range(n)))
    for ci, name in enumerate(configs):
        row = cells[ci * len(rates):(ci + 1) * len(rates)]
        reference = _bucket_windows(row[0].windows, n)
        for ri, rate in enumerate(rates):
            buckets = _bucket_windows(row[ri].windows, n)
            for mi, metric in ((0, "coverage%"), (1, "accuracy%")):
                values = [b[mi] if b is not None else None for b in buckets]
                print(f"{name + '/' + format(rate, 'g'):18s}  {metric:10s}  "
                      + _window_cells(values))
                if ri == 0:
                    continue
                ref = [b[mi] if b is not None else None for b in reference]
                deltas = [v - r if v is not None and r is not None else None
                          for v, r in zip(values, ref)]
                print(f"{'':18s}  {'Δ' + metric[:-1]:10s}  "
                      + _window_cells(deltas))


def _cmd_compare(args) -> int:
    from repro.experiments.charts import bar_chart

    baseline = run_simulation(args.app, "nopref", scale=args.scale)
    items = []
    for config in ("conven4", "base", "chain", "repl", "conven4+repl",
                   "custom"):
        result = run_simulation(args.app, config, scale=args.scale)
        items.append((result.config_name,
                      baseline.execution_time / result.execution_time))
    print(bar_chart(items, title=f"speedup over NoPref — {args.app}",
                    unit="x"))
    return 0


def _build_cache(args):
    """The persistent cache implied by --cache-dir / --no-cache."""
    from repro.perf.cache import ResultCache, default_cache_dir

    if args.no_cache:
        return None
    return ResultCache(args.cache_dir or default_cache_dir())


def _add_perf_options(parser) -> None:
    """--jobs / --cache-dir / --no-cache, shared by matrix-shaped commands."""
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default 1 = serial)")
    parser.add_argument("--cache-dir", default=None,
                        help="persistent result cache directory (default "
                             ".repro-cache, or $REPRO_CACHE_DIR)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the persistent result cache")


def _cmd_experiments(args) -> int:
    from repro.experiments import runall
    forwarded = ["--scale", str(args.scale), "--jobs", str(args.jobs)]
    if args.cache_dir is not None:
        forwarded += ["--cache-dir", args.cache_dir]
    if args.no_cache:
        forwarded.append("--no-cache")
    if args.profile:
        forwarded.append("--profile")
    if args.trace_dir is not None:
        forwarded += ["--trace-dir", args.trace_dir]
    return runall.main(forwarded)


def _cmd_lint(rest: list[str]) -> int:
    from repro.lint import cli
    return cli.main(rest)


def _cmd_trace(rest: list[str]) -> int:
    from repro.obs import cli
    return cli.main(rest)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads and configurations")

    run_p = sub.add_parser("run", help="run one simulation")
    run_p.add_argument("app")
    run_p.add_argument("config", nargs="?", default="repl")
    run_p.add_argument("--scale", type=float, default=0.4)
    run_p.add_argument("--faults", metavar="SPEC",
                       help='fault plan, e.g. "obs_drop=0.05,push_loss=0.1"')
    run_p.add_argument("--fault-seed", type=int, default=0,
                       help="seed for the fault schedule (default 0)")
    run_p.add_argument("--invariants", action="store_true",
                       help="audit bookkeeping invariants after every event")
    run_p.add_argument("--cores", type=int, default=1, metavar="N",
                       help="simulate N coordinated cores; <app> becomes a "
                            "+-joined bundle of exactly N apps (tree+cg)")
    run_p.add_argument("--coordination", choices=("static", "demand"),
                       default="static",
                       help="multicore resource-arbitration policy "
                            "(default static)")

    cmp_p = sub.add_parser("compare", help="compare configs on one app")
    cmp_p.add_argument("app")
    cmp_p.add_argument("--scale", type=float, default=0.4)

    exp_p = sub.add_parser("experiments", help="regenerate all figures")
    exp_p.add_argument("--scale", type=float, default=1.0)
    exp_p.add_argument("--profile", action="store_true",
                       help="report time per subsystem (to stderr)")
    exp_p.add_argument("--trace-dir", default=None, metavar="DIR",
                       help="run the matrix under the observability tracer "
                            "and export event streams into DIR")
    _add_perf_options(exp_p)

    chaos_p = sub.add_parser(
        "chaos", help="fault-injection sweep (speedup vs fault rate)")
    chaos_p.add_argument("app")
    chaos_p.add_argument("--configs", default="base,chain,repl",
                         help="comma-separated configs (default base,chain,repl)")
    chaos_p.add_argument("--rates", default="0,0.02,0.05,0.1,0.2",
                         help="comma-separated uniform fault rates")
    chaos_p.add_argument("--scale", type=float, default=0.3)
    chaos_p.add_argument("--fault-seed", type=int, default=0)
    chaos_p.add_argument("--invariants", action="store_true")
    chaos_p.add_argument("--windows", type=int, default=8, metavar="N",
                         help="report per-window coverage/accuracy "
                              "degradation in N buckets (0 disables; "
                              "default 8)")
    _add_perf_options(chaos_p)

    sub.add_parser(
        "lint", help="static analysis suite (see docs/STATIC_ANALYSIS.md)",
        add_help=False)

    sub.add_parser(
        "trace", help="pipeline event tracing (see docs/OBSERVABILITY.md)",
        add_help=False)

    sub.add_parser(
        "timeline", help="render a trace as an ASCII lane timeline or "
                         "collapsed flamegraph stacks",
        add_help=False)

    sub.add_parser(
        "tracediff", help="align two event streams and explain every "
                          "divergence",
        add_help=False)

    sub.add_parser(
        "campaign", help="crash-safe N-repetition sweep driver with "
                         "journaled resume (see docs/ROBUSTNESS.md)",
        add_help=False)

    sub.add_parser(
        "cache", help="result-cache integrity tools: stats / verify / gc",
        add_help=False)

    arglist = list(sys.argv[1:] if argv is None else argv)
    if arglist[:1] == ["lint"]:
        # Everything after `lint` belongs to repro.lint.cli's own parser
        # (argparse subparsers cannot forward unknown options cleanly).
        return _cmd_lint(arglist[1:])
    if arglist[:1] == ["trace"]:
        return _cmd_trace(arglist[1:])
    if arglist[:1] == ["timeline"]:
        from repro.obs.analysis.cli import timeline_main
        return timeline_main(arglist[1:])
    if arglist[:1] == ["tracediff"]:
        from repro.obs.analysis.cli import tracediff_main
        return tracediff_main(arglist[1:])
    if arglist[:1] == ["campaign"]:
        from repro.campaign.cli import main as campaign_main
        return campaign_main(arglist[1:])
    if arglist[:1] == ["cache"]:
        from repro.perf.cachecli import main as cache_main
        return cache_main(arglist[1:])
    args = parser.parse_args(arglist)
    handlers = {"list": _cmd_list, "run": _cmd_run,
                "compare": _cmd_compare, "experiments": _cmd_experiments,
                "chaos": _cmd_chaos}
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
