"""Command-line interface: ``python -m repro``.

Subcommands::

    python -m repro run <app> <config> [--scale S]    one simulation
    python -m repro compare <app> [--scale S]         all configs for an app
    python -m repro list                              workloads + configs
    python -m repro experiments [--scale S]           regenerate everything
"""

from __future__ import annotations

import argparse
import sys

from repro.sim.config import PRESETS
from repro.sim.driver import run_simulation
from repro.workloads.registry import list_workloads


def _cmd_list(_args) -> int:
    print("workloads:", ", ".join(list_workloads()))
    print("configs:  ", ", ".join(sorted(PRESETS)), "+ custom")
    return 0


def _cmd_run(args) -> int:
    result = run_simulation(args.app, args.config, scale=args.scale)
    bd = result.processor.breakdown()
    print(f"{args.app} / {result.config_name} @ scale {args.scale}")
    print(f"  execution time : {result.execution_time:,} cycles")
    print(f"  breakdown      : busy {bd['busy']:.2f}  "
          f"uptoL2 {bd['uptol2']:.2f}  beyondL2 {bd['beyondl2']:.2f}")
    print(f"  L2 misses      : {result.l2.nonpref_misses:,} remaining, "
          f"coverage {result.coverage():.2f}")
    print(f"  bus utilisation: {result.bus_utilization():.0%} "
          f"({result.bus_prefetch_utilization():.0%} prefetch)")
    if result.ulmt_timing is not None:
        t = result.ulmt_timing
        print(f"  ULMT           : response {t.avg_response:.0f}, "
              f"occupancy {t.avg_occupancy:.0f} cycles, IPC {t.ipc:.2f}")
    return 0


def _cmd_compare(args) -> int:
    from repro.experiments.charts import bar_chart

    baseline = run_simulation(args.app, "nopref", scale=args.scale)
    items = []
    for config in ("conven4", "base", "chain", "repl", "conven4+repl",
                   "custom"):
        result = run_simulation(args.app, config, scale=args.scale)
        items.append((result.config_name,
                      baseline.execution_time / result.execution_time))
    print(bar_chart(items, title=f"speedup over NoPref — {args.app}",
                    unit="x"))
    return 0


def _cmd_experiments(args) -> int:
    from repro.experiments import runall
    runall.main(["--scale", str(args.scale)])
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads and configurations")

    run_p = sub.add_parser("run", help="run one simulation")
    run_p.add_argument("app")
    run_p.add_argument("config", nargs="?", default="repl")
    run_p.add_argument("--scale", type=float, default=0.4)

    cmp_p = sub.add_parser("compare", help="compare configs on one app")
    cmp_p.add_argument("app")
    cmp_p.add_argument("--scale", type=float, default=0.4)

    exp_p = sub.add_parser("experiments", help="regenerate all figures")
    exp_p.add_argument("--scale", type=float, default=1.0)

    args = parser.parse_args(argv)
    handlers = {"list": _cmd_list, "run": _cmd_run,
                "compare": _cmd_compare, "experiments": _cmd_experiments}
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
