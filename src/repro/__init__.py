"""repro — reproduction of "Using a User-Level Memory Thread for
Correlation Prefetching" (Solihin, Lee & Torrellas, ISCA 2002).

Public API quickstart::

    from repro import run_simulation

    nopref = run_simulation("mcf", "nopref")
    repl = run_simulation("mcf", "repl")
    print(repl.speedup_over(nopref))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.core import (
    BasePrefetcher,
    ChainPrefetcher,
    CombinedUlmtPrefetcher,
    CorrelationTable,
    ProfilingAlgorithm,
    ReplicatedPrefetcher,
    SequentialUlmtPrefetcher,
    Ulmt,
    UlmtAlgorithm,
    build_algorithm,
    customization_for,
)
from repro.params import (
    BASE_PARAMS,
    CHAIN_PARAMS,
    CONVEN4_PARAMS,
    REPL_PARAMS,
    SEQ1_PARAMS,
    SEQ4_PARAMS,
    CorrelationParams,
    MemProcLocation,
    SequentialParams,
)
from repro.sim import (
    PRESETS,
    SimResult,
    System,
    SystemConfig,
    custom_config,
    preset,
    run_matrix,
    run_simulation,
)
from repro.workloads import Trace, TraceBuilder, get_trace, list_workloads

__version__ = "1.0.0"

__all__ = [
    "BasePrefetcher",
    "ChainPrefetcher",
    "CombinedUlmtPrefetcher",
    "CorrelationTable",
    "ProfilingAlgorithm",
    "ReplicatedPrefetcher",
    "SequentialUlmtPrefetcher",
    "Ulmt",
    "UlmtAlgorithm",
    "build_algorithm",
    "customization_for",
    "BASE_PARAMS",
    "CHAIN_PARAMS",
    "CONVEN4_PARAMS",
    "REPL_PARAMS",
    "SEQ1_PARAMS",
    "SEQ4_PARAMS",
    "CorrelationParams",
    "MemProcLocation",
    "SequentialParams",
    "PRESETS",
    "SimResult",
    "System",
    "SystemConfig",
    "custom_config",
    "preset",
    "run_matrix",
    "run_simulation",
    "Trace",
    "TraceBuilder",
    "get_trace",
    "list_workloads",
    "__version__",
]
