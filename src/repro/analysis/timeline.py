"""Interval (phase) analysis of a simulation run.

Applications change behaviour over time — CG alternates SpMV and vector
phases, the adaptive ULMT of :mod:`repro.core.adaptive` exists because of
exactly that.  This module slices a run into fixed-size reference
intervals and reports per-interval miss rates and coverage, so phase
structure becomes visible::

    timeline = measure_timeline("cg", "repl", intervals=20)
    for iv in timeline.intervals:
        print(iv.index, iv.miss_rate, iv.coverage)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.config import SystemConfig, custom_config, preset
from repro.sim.system import System
from repro.workloads.registry import get_trace
from repro.workloads.trace import Trace


@dataclass
class Interval:
    """Aggregated behaviour of one slice of the reference stream."""

    index: int
    refs: int = 0
    l2_misses: int = 0
    prefetch_hits: int = 0
    delayed_hits: int = 0

    @property
    def miss_rate(self) -> float:
        return self.l2_misses / self.refs if self.refs else 0.0

    @property
    def coverage(self) -> float:
        covered = self.prefetch_hits + self.delayed_hits
        total = covered + self.l2_misses
        return covered / total if total else 0.0


@dataclass
class Timeline:
    """Per-interval behaviour of one run."""

    workload: str
    config: str
    intervals: list[Interval] = field(default_factory=list)

    def hottest_interval(self) -> Interval:
        return max(self.intervals, key=lambda iv: iv.miss_rate)

    def coverage_trend(self) -> list[float]:
        return [iv.coverage for iv in self.intervals]


def measure_timeline(workload: str | Trace, config: str | SystemConfig,
                     intervals: int = 20, scale: float = 1.0) -> Timeline:
    """Run one simulation, slicing stats into ``intervals`` pieces."""
    if isinstance(workload, Trace):
        trace = workload
        name = trace.name or "trace"
    else:
        trace = get_trace(workload, scale=scale)
        name = workload
    if isinstance(config, str):
        config = custom_config(name) if config == "custom" else preset(config)

    system = System(config)
    interval_size = max(1, len(trace) // intervals)
    timeline = Timeline(workload=name, config=config.name)

    processed = 0
    last = {"misses": 0, "hits": 0, "delayed": 0}
    for idx in range(intervals):
        chunk = trace.refs[idx * interval_size:
                           (idx + 1) * interval_size if idx < intervals - 1
                           else len(trace)]
        if not chunk:
            break
        for ref in chunk:
            system.processor.step(ref)
        processed += len(chunk)
        stats = system.l2.stats
        interval = Interval(
            index=idx, refs=len(chunk),
            l2_misses=stats.nonpref_misses - last["misses"],
            prefetch_hits=stats.prefetch_hits - last["hits"],
            delayed_hits=stats.delayed_hits - last["delayed"])
        last = {"misses": stats.nonpref_misses,
                "hits": stats.prefetch_hits,
                "delayed": stats.delayed_hits}
        timeline.intervals.append(interval)
    return timeline
