"""Figure 5: predictability of the L2 miss sequences.

The paper runs each ULMT algorithm in observe-only mode over the L2 miss
address stream (no prefetching) and records the fraction of misses that are
correctly predicted at successor levels 1-3:

* for a sequential prefetcher, a level-k prediction is correct when the
  k-th upcoming miss matches the k-th next address of one of the identified
  streams;
* for a pair-based prefetcher, it is correct when the k-th upcoming miss is
  among the level-k successors predicted after observing the current miss.

The experiments use a large table (NumRows = 256 K, Assoc = 4, NumSucc = 4)
so that practically no prediction is lost to table conflicts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.algorithms import (
    BasePrefetcher,
    ChainPrefetcher,
    ReplicatedPrefetcher,
    UlmtAlgorithm,
)
from repro.core.combined import CombinedUlmtPrefetcher
from repro.core.sequential import SequentialUlmtPrefetcher
from repro.params import (
    SEQ1_PARAMS,
    SEQ4_PARAMS,
    CorrelationParams,
)
from repro.sim.config import preset
from repro.sim.system import System
from repro.workloads.registry import get_trace

#: Figure 5 experimental table configuration: "large tables ensure that
#: practically no prediction is missed due to conflicts".
PREDICTION_TABLE = CorrelationParams(num_succ=4, assoc=4, num_levels=3,
                                     num_rows=256 * 1024)

#: The algorithm columns of Figure 5 (the paper's level-1 chart shows
#: Seq1/Seq4/Base/Seq4+Base; its level-2/3 charts show
#: Seq1/Seq4/Chain/Repl/Seq4+Repl).
PREDICTORS = ("seq1", "seq4", "base", "seq4+base", "chain", "repl",
              "seq4+repl")


def build_predictor(name: str) -> UlmtAlgorithm:
    """Construct a Figure 5 predictor with the large no-conflict table."""
    if name == "seq1":
        return SequentialUlmtPrefetcher(SEQ1_PARAMS)
    if name == "seq4":
        return SequentialUlmtPrefetcher(SEQ4_PARAMS)
    if name == "base":
        return BasePrefetcher(PREDICTION_TABLE.replaced(num_levels=1))
    if name == "chain":
        return ChainPrefetcher(PREDICTION_TABLE)
    if name == "repl":
        return ReplicatedPrefetcher(PREDICTION_TABLE)
    if "+" in name:
        parts = name.split("+")
        return CombinedUlmtPrefetcher([build_predictor(p) for p in parts],
                                      name=name)
    raise ValueError(f"unknown Figure 5 predictor: {name!r}")


@dataclass(frozen=True)
class PredictionResult:
    """Correct-prediction fractions for successor levels 1..N."""

    predictor: str
    levels: tuple[float, ...]
    misses: int


def _observe(algorithm: UlmtAlgorithm, miss: int) -> None:
    """Advance predictor state on one observed miss, without prefetching."""
    if isinstance(algorithm, SequentialUlmtPrefetcher):
        algorithm.detector.observe_for_prediction(miss)
        return
    if isinstance(algorithm, CombinedUlmtPrefetcher):
        for component in algorithm.components:
            _observe(component, miss)
        return
    algorithm.learn(miss)


def measure_predictability(miss_stream: list[int], predictor: str,
                           max_level: int = 3,
                           warmup_fraction: float = 0.25) -> PredictionResult:
    """Run one Figure 5 cell: predictor x miss stream -> per-level accuracy.

    The first ``warmup_fraction`` of the stream trains the predictor but is
    not scored: our scaled workloads run a handful of iterations, so the
    cold first pass would otherwise dominate the statistic, whereas the
    paper's full-length runs amortise it away.
    """
    algorithm = build_predictor(predictor)
    correct = [0] * max_level
    evaluated = [0] * max_level
    warmup = int(len(miss_stream) * warmup_fraction)
    for i, miss in enumerate(miss_stream):
        _observe(algorithm, miss)
        if i < warmup:
            continue
        predictions = algorithm.predict_levels(max_level)
        for level in range(max_level):
            target_idx = i + level + 1
            if target_idx >= len(miss_stream):
                continue
            evaluated[level] += 1
            if miss_stream[target_idx] in predictions[level]:
                correct[level] += 1
    fractions = tuple(correct[k] / evaluated[k] if evaluated[k] else 0.0
                      for k in range(max_level))
    return PredictionResult(predictor=predictor, levels=fractions,
                            misses=len(miss_stream))


_STREAM_CACHE: dict[tuple[str, float], list[int]] = {}


def collect_miss_stream(app: str, scale: float = 1.0,
                        engine: str = "event") -> list[int]:
    """The L2 miss line-address sequence of a NoPref run (what queue 2 of
    the memory processor would observe).  Cached per (app, scale).

    ``engine`` selects the simulation engine for the collection pass only;
    the stream is engine-independent (the kernel-parity guarantee covers
    the full result, and queue-2 taps observe identical miss sequences),
    so the memo key deliberately ignores it.
    """
    key = (app, scale)
    if key in _STREAM_CACHE:
        return _STREAM_CACHE[key]
    stream: list[int] = []
    observer = lambda line, now, is_pf: stream.append(line)  # noqa: E731
    if engine == "batch":
        from repro.kernel.engine import run_batch
        run_batch(get_trace(app, scale=scale), preset("nopref"),
                  miss_observer=observer)
    else:
        system = System(preset("nopref"))
        system.miss_observer = observer
        system.run(get_trace(app, scale=scale))
    # repro-lint: disable=DET006 -- intentional memo of the deterministic
    # NoPref miss stream per (app, scale); read-only once stored
    _STREAM_CACHE[key] = stream
    return stream


_ROW_CACHE: dict[tuple, dict[str, PredictionResult]] = {}


def figure5_row(app: str, scale: float = 1.0,
                predictors: tuple[str, ...] = PREDICTORS,
                max_level: int = 3,
                engine: str = "event") -> dict[str, PredictionResult]:
    """All Figure 5 cells for one application (cached per process)."""
    key = (app, scale, tuple(predictors), max_level)
    if key not in _ROW_CACHE:
        stream = collect_miss_stream(app, scale, engine=engine)
        # repro-lint: disable=DET006 -- intentional memo keyed by every
        # input that shapes the row; values are never mutated after store
        _ROW_CACHE[key] = {p: measure_predictability(stream, p, max_level)
                           for p in predictors}
    return _ROW_CACHE[key]
