"""Table 2: sizing the per-application correlation tables.

The paper sizes ``NumRows`` as "the lowest power of two such that, with a
trivial hashing function that simply takes the lower bits of the line
address, less than 5% of the insertions replace an existing entry", with a
two-way set-associative table.  The table size in megabytes then follows
from the per-row byte costs (20/12/28 bytes for Base/Chain/Repl on a 32-bit
machine).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.prediction import collect_miss_stream
from repro.core.table import CorrelationTable
from repro.params import ROW_BYTES

#: The paper's criterion.
MAX_REPLACEMENT_FRACTION = 0.05
TABLE_ASSOC = 2


def replacement_fraction(miss_stream: list[int], num_rows: int,
                         assoc: int = TABLE_ASSOC) -> float:
    """Fraction of row insertions that replaced an existing row."""
    table = CorrelationTable(num_rows=num_rows, assoc=assoc, num_succ=2)
    for miss in miss_stream:
        table.find_or_alloc(miss)
    return table.replacement_fraction()


def size_num_rows(miss_stream: list[int],
                  max_fraction: float = MAX_REPLACEMENT_FRACTION,
                  min_rows: int = 1024,
                  max_rows: int = 1 << 22) -> int:
    """Smallest power-of-two NumRows meeting the < 5% replacement rule."""
    if not miss_stream:
        raise ValueError("empty miss stream")
    num_rows = min_rows
    while num_rows <= max_rows:
        if replacement_fraction(miss_stream, num_rows) < max_fraction:
            return num_rows
        num_rows *= 2
    raise RuntimeError(f"no table size up to {max_rows} met the "
                       f"{max_fraction:.0%} replacement criterion")


@dataclass(frozen=True)
class TableSizing:
    """One Table 2 row."""

    app: str
    num_rows: int
    misses: int

    @property
    def num_rows_k(self) -> float:
        return self.num_rows / 1024

    def size_mbytes(self, algorithm: str) -> float:
        """Table size in MB for base/chain/repl (Table 2's last columns)."""
        return self.num_rows * ROW_BYTES[algorithm] / (1024 * 1024)


def size_application_table(app: str, scale: float = 1.0,
                           engine: str = "event") -> TableSizing:
    """Run the Table 2 sizing procedure for one application.

    ``engine`` picks the simulation engine for the miss-stream collection
    pass; the sizing itself is engine-independent (identical streams).
    """
    stream = collect_miss_stream(app, scale, engine=engine)
    return TableSizing(app=app, num_rows=size_num_rows(stream),
                       misses=len(stream))
