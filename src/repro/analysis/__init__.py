"""Analyses backing the paper's figures: prediction, miss distances,
prefetch coverage, and table sizing."""

from repro.analysis.coverage import (
    CATEGORIES,
    CoverageBreakdown,
    average_breakdowns,
    breakdown_from_result,
)
from repro.analysis.missdist import (
    MissDistanceResult,
    average_fractions,
    measure_miss_distances,
)
from repro.analysis.prediction import (
    PREDICTION_TABLE,
    PREDICTORS,
    PredictionResult,
    build_predictor,
    collect_miss_stream,
    figure5_row,
    measure_predictability,
)
from repro.analysis.tablesize import (
    MAX_REPLACEMENT_FRACTION,
    TableSizing,
    replacement_fraction,
    size_application_table,
    size_num_rows,
)
from repro.analysis.timeline import Interval, Timeline, measure_timeline

__all__ = [
    "CATEGORIES",
    "CoverageBreakdown",
    "average_breakdowns",
    "breakdown_from_result",
    "MissDistanceResult",
    "average_fractions",
    "measure_miss_distances",
    "PREDICTION_TABLE",
    "PREDICTORS",
    "PredictionResult",
    "build_predictor",
    "collect_miss_stream",
    "figure5_row",
    "measure_predictability",
    "MAX_REPLACEMENT_FRACTION",
    "TableSizing",
    "replacement_fraction",
    "size_application_table",
    "size_num_rows",
    "Interval",
    "Timeline",
    "measure_timeline",
]
