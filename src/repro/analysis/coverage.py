"""Figure 9: breakdown of L2 misses and ULMT prefetches.

Combines misses and prefetches into the paper's five categories, normalised
to the original number of L2 misses (Hits + DelayedHits + NonPrefMisses ≈ 1
up to prefetch-induced conflict misses):

* ``Hits``            — prefetches that fully eliminated an L2 miss;
* ``DelayedHits``     — prefetches that arrived a bit late (partial save);
* ``NonPrefMisses``   — remaining misses paying the full latency;
* ``Replaced``        — prefetched lines evicted before any use;
* ``Redundant``       — prefetched lines dropped on arrival (already
  present in the cache).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.stats import SimResult

CATEGORIES = ("hits", "delayed_hits", "nonpref_misses", "replaced",
              "redundant")


@dataclass(frozen=True)
class CoverageBreakdown:
    """One Figure 9 bar."""

    app: str
    config: str
    hits: float
    delayed_hits: float
    nonpref_misses: float
    replaced: float
    redundant: float

    @property
    def coverage(self) -> float:
        return self.hits + self.delayed_hits

    @property
    def total(self) -> float:
        """Stacked bar height (L2misses + prefetches, normalised)."""
        return (self.hits + self.delayed_hits + self.nonpref_misses
                + self.replaced + self.redundant)

    @property
    def conflict_misses(self) -> float:
        """New misses above the 1.0 line: conflicts caused by prefetches."""
        return max(0.0, self.hits + self.delayed_hits
                   + self.nonpref_misses - 1.0)

    def as_dict(self) -> dict[str, float]:
        return {c: getattr(self, c) for c in CATEGORIES}


def breakdown_from_result(result: SimResult) -> CoverageBreakdown:
    """Extract the Figure 9 categories from one simulation result."""
    mb = result.miss_breakdown()
    return CoverageBreakdown(app=result.workload, config=result.config_name,
                             hits=mb["hits"],
                             delayed_hits=mb["delayed_hits"],
                             nonpref_misses=mb["nonpref_misses"],
                             replaced=mb["replaced"],
                             redundant=mb["redundant"])


def average_breakdowns(breakdowns: list[CoverageBreakdown],
                       label: str = "average") -> CoverageBreakdown:
    """Arithmetic per-category average (the 'average of 7 apps' bar)."""
    if not breakdowns:
        raise ValueError("no breakdowns to average")
    n = len(breakdowns)
    sums = {c: sum(getattr(b, c) for b in breakdowns) / n
            for c in CATEGORIES}
    config = breakdowns[0].config
    return CoverageBreakdown(app=label, config=config, **sums)
