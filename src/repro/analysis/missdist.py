"""Figure 6: time between consecutive L2 misses arriving at memory.

The histogram bins ([0,80), [80,200), [200,280), [280,inf) in 1.6 GHz
cycles) tell whether the ULMT can keep up: the dominant [200,280) bin holds
the dependent misses whose spacing equals the memory round trip — the ULMT's
occupancy must stay below ~200 cycles to process them all.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.config import preset
from repro.sim.stats import MISS_DISTANCE_LABELS
from repro.sim.system import System
from repro.workloads.registry import get_trace


@dataclass(frozen=True)
class MissDistanceResult:
    """One Figure 6 bar: bin fractions for one application."""

    app: str
    fractions: tuple[float, float, float, float]
    total_misses: int

    @property
    def dominant_bin(self) -> str:
        idx = max(range(4), key=lambda i: self.fractions[i])
        return MISS_DISTANCE_LABELS[idx]


def result_to_distances(app: str, result) -> MissDistanceResult:
    """Histogram view of any NoPref :class:`~repro.sim.stats.SimResult`.

    Factored out of :func:`measure_miss_distances` so Figure 6 can reuse
    the shared (cached) NoPref run instead of re-simulating it.
    """
    return MissDistanceResult(
        app=app,
        fractions=result.miss_distance_fractions(),
        total_misses=sum(result.miss_distance_counts),
    )


def measure_miss_distances(app: str, scale: float = 1.0) -> MissDistanceResult:
    """Run NoPref and histogram the inter-miss distances at memory."""
    system = System(preset("nopref"))
    result = system.run(get_trace(app, scale=scale))
    return result_to_distances(app, result)


def average_fractions(results: list[MissDistanceResult]) -> tuple[float, ...]:
    """Per-bin arithmetic average across applications (the paper's 'on
    average, [200,280) contributes 60% of all miss distances')."""
    if not results:
        raise ValueError("no results to average")
    return tuple(sum(r.fractions[i] for r in results) / len(results)
                 for i in range(4))
