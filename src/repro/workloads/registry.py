"""Registry of the nine applications (paper Table 2).

Maps application names to their trace generators and carries the Table 2
metadata (suite, problem, input).  Traces are deterministic for a given
``(name, scale, seed)`` and cached, because the evaluation matrix re-runs
the same trace under many system configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.workloads import cg, equake, ft, gap, mcf, mst, parser, sparse, tree
from repro.workloads.trace import Trace


@dataclass(frozen=True)
class WorkloadInfo:
    """Table 2 metadata for one application."""

    name: str
    suite: str
    problem: str
    input_desc: str
    generate: Callable[..., Trace]


_MODULES = (cg, equake, ft, gap, mcf, mst, parser, sparse, tree)

WORKLOADS: dict[str, WorkloadInfo] = {
    m.NAME: WorkloadInfo(name=m.NAME, suite=m.SUITE, problem=m.PROBLEM,
                         input_desc=m.INPUT, generate=m.generate)
    for m in _MODULES
}

#: Paper order (Table 2 rows).
APP_ORDER = ("cg", "equake", "ft", "gap", "mcf", "mst", "parser",
             "sparse", "tree")

_TRACE_CACHE: dict[tuple[str, float, int], Trace] = {}


def list_workloads() -> list[str]:
    """Application names in the paper's Table 2 order."""
    return list(APP_ORDER)


def workload_info(name: str) -> WorkloadInfo:
    try:
        return WORKLOADS[name.lower()]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; available: "
                       f"{sorted(WORKLOADS)}") from None


def get_trace(name: str, scale: float = 1.0, seed: int | None = None,
              cache: bool = True) -> Trace:
    """Generate (or fetch from cache) the trace of one application."""
    info = workload_info(name)
    if seed is None:
        key = (info.name, scale, -1)
        if cache and key in _TRACE_CACHE:
            return _TRACE_CACHE[key]
        trace = info.generate(scale=scale)
    else:
        key = (info.name, scale, seed)
        if cache and key in _TRACE_CACHE:
            return _TRACE_CACHE[key]
        trace = info.generate(scale=scale, seed=seed)
    if cache:
        # repro-lint: disable=DET006 -- intentional memo: traces are
        # deterministic per (name, scale, seed), so sharing them across
        # runs in one process cannot leak state between simulations
        _TRACE_CACHE[key] = trace
    return trace


def clear_trace_cache() -> None:
    _TRACE_CACHE.clear()  # repro-lint: disable=DET006 -- cache owner
