"""Mcf — SPECint2000 combinatorial optimisation (network simplex).

Mcf's L2 misses are dominated by pointer dereferences into the node array
while walking the basis-tree threading order, plus data-dependent touches of
arc records.  Node objects are heap-scattered, so nothing about the walk is
sequential — Figure 5 shows Seq4 predicting essentially none of Mcf's
misses — but the *thread order* is stable across simplex iterations, so the
miss sequence repeats and pair-based prefetching predicts it well.

The mini-implementation builds a random spanning-tree threading over
scattered node records and walks it once per simplex iteration, touching
each node's arc records (whose identity is a fixed function of the node).
A small fraction of basis exchanges per iteration perturbs the thread,
modelling the slow drift of the real basis tree.
"""

from __future__ import annotations

import random

from repro.workloads.heap import Heap
from repro.workloads.trace import Trace, TraceBuilder

NAME = "mcf"
SUITE = "SpecInt2000"
PROBLEM = "Combinatorial optimization"
INPUT = "Test (scaled)"

DEFAULT_NODES = 16000
#: Footprint floor: 9000 nodes (576 KB) plus 1.7 MB of arc records keep the
#: walk missing in the 512 KB L2 at any scale.
MIN_NODES = 9000
DEFAULT_ITERS = 6
NODE_BYTES = 64
ARC_BYTES = 64
ARCS_PER_NODE = 3
#: Fraction of thread links rewired per simplex iteration (the entering /
#: leaving arcs of the basis exchanges drift the thread order).
EXCHANGE_FRACTION = 0.05


def generate(scale: float = 1.0, seed: int = 11) -> Trace:
    rng = random.Random(seed)
    num_nodes = max(MIN_NODES, int(DEFAULT_NODES * scale))
    iters = max(2, round(DEFAULT_ITERS * scale))

    heap = Heap()
    node_addrs = heap.alloc_nodes(num_nodes, NODE_BYTES, rng)
    arcs = heap.alloc_array(num_nodes * ARCS_PER_NODE, ARC_BYTES)

    # The basis-tree thread: a permutation of the nodes, visited in order by
    # following each node's `thread` pointer.
    thread = list(range(num_nodes))
    rng.shuffle(thread)
    # Each node touches a fixed, pseudo-random set of arcs.
    node_arcs = [[rng.randrange(num_nodes * ARCS_PER_NODE)
                  for _ in range(2)] for _ in range(num_nodes)]

    tb = TraceBuilder()
    for _ in range(iters):
        _walk_thread(tb, thread, node_addrs, node_arcs, arcs)
        _basis_exchanges(rng, thread)
    return tb.build(NAME)


def _walk_thread(tb: TraceBuilder, thread: list[int], node_addrs: list[int],
                 node_arcs: list[list[int]], arcs: int) -> None:
    """One price-update sweep over the threaded basis tree."""
    for node in thread:
        addr = node_addrs[node]
        # Loading the node record through the previous node's thread pointer:
        # a dependent (pointer-chasing) access.
        tb.compute(4)
        tb.load(addr, dependent=True)
        tb.compute(3)
        tb.store(addr + 16)  # update node potential (same line)
        for arc_id in node_arcs[node]:
            tb.compute(4)
            tb.load(arcs + arc_id * ARC_BYTES, dependent=True)


def _basis_exchanges(rng: random.Random, thread: list[int]) -> None:
    """Swap a few thread positions: entering/leaving arcs change the tree."""
    swaps = max(1, int(len(thread) * EXCHANGE_FRACTION))
    for _ in range(swaps):
        i = rng.randrange(len(thread))
        j = rng.randrange(len(thread))
        thread[i], thread[j] = thread[j], thread[i]
