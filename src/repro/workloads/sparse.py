"""Sparse — SparseBench GMRES with compressed-row storage.

GMRES(m) alternates a CRS sparse matrix-vector product with Gram-Schmidt
orthogonalisation against the Krylov basis.  The basis vectors are large and
power-of-two aligned, so they conflict with each other and with the matrix
arrays in the 4-way L2 — Sparse is one of the two applications whose
speedup the paper reports as limited by cache conflicts: prefetched lines
are evicted before use (``Replaced``) and conflict misses remain
(``NonPrefMisses``), cf. Figure 9.
"""

from __future__ import annotations

import random

from repro.workloads.heap import Heap
from repro.workloads.trace import Trace, TraceBuilder

NAME = "sparse"
SUITE = "SparseBench"
PROBLEM = "GMRES with compressed row storage"
INPUT = "Scaled system"

DEFAULT_N = 9000
#: Floor: values 448 KB + colidx 224 KB + conflict-aligned vectors keep the
#: GMRES sweep missing (and conflicting) in the L2 at any scale.
MIN_N = 7000
NNZ_PER_ROW = 8
RESTART = 4
DEFAULT_SWEEPS = 1
_F8 = 8
_I4 = 4
#: Vectors are aligned to this boundary so the Krylov basis vectors
#: partially overlap in L2 sets (4 ways, 128 KB per way): enough conflict
#: pressure to evict prefetched lines before use, as Figure 9 reports for
#: Sparse, without making the whole run pathological.
CONFLICT_ALIGN = 16 * 1024


def generate(scale: float = 1.0, seed: int = 37) -> Trace:
    rng = random.Random(seed)
    n = max(MIN_N, int(DEFAULT_N * scale))

    heap = Heap()
    values = heap.alloc_array(n * NNZ_PER_ROW, _F8)
    colidx = heap.alloc_array(n * NNZ_PER_ROW, _I4)
    # Krylov basis: RESTART+1 conflict-aligned vectors.
    basis = [heap.alloc(n * _F8, align=CONFLICT_ALIGN)
             for _ in range(RESTART + 1)]
    residual = heap.alloc(n * _F8, align=CONFLICT_ALIGN)

    columns = [[rng.randrange(n) for _ in range(NNZ_PER_ROW)]
               for _ in range(n)]

    tb = TraceBuilder()
    for _ in range(DEFAULT_SWEEPS):
        for k in range(RESTART):
            _crs_spmv(tb, n, columns, values, colidx, basis[k], basis[k + 1])
            _orthogonalize(tb, n, basis, k + 1)
        _update_residual(tb, n, basis[RESTART], residual)
    return tb.build(NAME)


def _crs_spmv(tb: TraceBuilder, n: int, columns, values: int, colidx: int,
              x: int, y: int) -> None:
    for i in range(n):
        # Unrolled by four: one record per 32 B of the values stream.
        for j in range(0, NNZ_PER_ROW, 4):
            k = i * NNZ_PER_ROW + j
            tb.compute(8)
            tb.load(values + k * _F8)
            tb.load(colidx + k * _I4)
            tb.load(x + columns[i][j] * _F8)
        tb.compute(3)
        tb.store(y + i * _F8)


def _orthogonalize(tb: TraceBuilder, n: int, basis: list[int],
                   up_to: int) -> None:
    """Modified Gram-Schmidt of basis[up_to] against basis[0..up_to-1]."""
    target = basis[up_to]
    for prev in basis[:up_to]:
        for i in range(0, n, 8):
            tb.compute(4)
            tb.load(prev + i * _F8)
            tb.load(target + i * _F8)
        for i in range(0, n, 8):
            tb.compute(4)
            tb.load(prev + i * _F8)
            tb.store(target + i * _F8)


def _update_residual(tb: TraceBuilder, n: int, v: int, r: int) -> None:
    for i in range(0, n, 8):
        tb.compute(4)
        tb.load(v + i * _F8)
        tb.store(r + i * _F8)
