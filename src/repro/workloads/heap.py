"""A tiny instrumented heap for the workload mini-implementations.

The nine workloads allocate their data structures from a :class:`Heap` so
that every object has a concrete byte address; the algorithms then emit
loads/stores of those addresses through a
:class:`~repro.workloads.trace.TraceBuilder`.

The heap is a bump allocator.  A shuffle mode allocates objects of one
arena in a randomised order, which is how linked-data-structure workloads
(Mcf, MST, Tree, Parser) obtain the scattered layouts that defeat sequential
prefetching in the paper.
"""

from __future__ import annotations

import random
from typing import Sequence


class Heap:
    """Bump allocator handing out aligned byte addresses."""

    #: Default base leaves page 0 unused, mirroring a real process layout.
    DEFAULT_BASE = 0x1000_0000

    def __init__(self, base: int = DEFAULT_BASE) -> None:
        if base < 0:
            raise ValueError("heap base must be non-negative")
        self._next = base
        self._base = base

    @property
    def bytes_allocated(self) -> int:
        return self._next - self._base

    def alloc(self, size: int, align: int = 8) -> int:
        """Allocate ``size`` bytes aligned to ``align`` and return the address."""
        if size <= 0:
            raise ValueError(f"allocation size must be positive: {size}")
        if align <= 0 or (align & (align - 1)) != 0:
            raise ValueError(f"alignment must be a positive power of two: {align}")
        addr = (self._next + align - 1) & ~(align - 1)
        self._next = addr + size
        return addr

    def alloc_array(self, count: int, elem_size: int, align: int = 8) -> int:
        """Allocate a contiguous array and return its base address."""
        if count <= 0:
            raise ValueError(f"array count must be positive: {count}")
        return self.alloc(count * elem_size, align)

    def alloc_nodes(self, count: int, node_size: int,
                    rng: random.Random | None = None,
                    align: int = 8) -> list[int]:
        """Allocate ``count`` node objects and return their addresses.

        When ``rng`` is given the *logical* order of the returned addresses
        is shuffled relative to the allocation order, modelling a heap whose
        nodes were allocated/freed over time: consecutive logical nodes sit
        on unrelated cache lines, so walking the structure produces an
        irregular — but repeatable — address sequence.
        """
        addrs = [self.alloc(node_size, align) for _ in range(count)]
        if rng is not None:
            rng.shuffle(addrs)
        return addrs


def array_index_addr(base: int, index: int, elem_size: int) -> int:
    """Byte address of ``base[index]`` for an array of ``elem_size`` items."""
    if index < 0:
        raise ValueError(f"negative array index: {index}")
    return base + index * elem_size


def strided_addrs(base: int, count: int, stride: int) -> Sequence[int]:
    """Addresses of a strided sweep (used by regular workload phases)."""
    return range(base, base + count * stride, stride)
