"""Workload/trace tooling CLI: ``python -m repro.workloads``.

Subcommands::

    python -m repro.workloads stats <app> [--scale S]      trace statistics
    python -m repro.workloads save <app> <file> [--scale S] generate + save
    python -m repro.workloads info <file>                   inspect a file
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter

from repro.workloads.registry import get_trace, list_workloads, workload_info
from repro.workloads.traceio import load_trace, save_trace


def _print_stats(trace, name: str) -> None:
    lines = trace.line_addresses()
    print(f"trace {name!r}:")
    print(f"  references      : {len(trace):,} "
          f"({trace.num_loads:,} loads, {trace.num_stores:,} stores)")
    print(f"  dependent       : {trace.num_dependent:,} "
          f"({trace.num_dependent / len(trace):.0%})")
    print(f"  computation     : {trace.total_comp_cycles:,} cycles")
    print(f"  footprint       : {trace.footprint_lines():,} lines "
          f"({trace.footprint_lines() * 64 / 1024:.0f} KB)")
    revisit = 1.0 - len(set(lines)) / len(lines)
    print(f"  line revisits   : {revisit:.0%}")
    deltas = Counter()
    for a, b in zip(lines, lines[1:]):
        d = b - a
        if d == 1:
            deltas["+1 line"] += 1
        elif d == -1:
            deltas["-1 line"] += 1
        elif d == 0:
            deltas["same line"] += 1
        else:
            deltas["jump"] += 1
    total = max(1, len(lines) - 1)
    print("  successor deltas: " +
          ", ".join(f"{k} {v / total:.0%}" for k, v in deltas.most_common()))


def _cmd_stats(args) -> int:
    info = workload_info(args.app)
    print(f"{info.name}: {info.problem} ({info.suite}, {info.input_desc})")
    trace = get_trace(args.app, scale=args.scale)
    _print_stats(trace, args.app)
    return 0


def _cmd_save(args) -> int:
    trace = get_trace(args.app, scale=args.scale)
    save_trace(trace, args.file)
    print(f"saved {len(trace):,} references to {args.file}")
    return 0


def _cmd_info(args) -> int:
    trace = load_trace(args.file)
    _print_stats(trace, trace.name)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.workloads",
                                     description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    stats_p = sub.add_parser("stats", help="print trace statistics")
    stats_p.add_argument("app", choices=list_workloads())
    stats_p.add_argument("--scale", type=float, default=0.4)

    save_p = sub.add_parser("save", help="generate and save a trace")
    save_p.add_argument("app", choices=list_workloads())
    save_p.add_argument("file")
    save_p.add_argument("--scale", type=float, default=0.4)

    info_p = sub.add_parser("info", help="inspect a saved trace")
    info_p.add_argument("file")

    args = parser.parse_args(argv)
    handlers = {"stats": _cmd_stats, "save": _cmd_save, "info": _cmd_info}
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
