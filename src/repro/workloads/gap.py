"""Gap — SPECint2000 group theory interpreter (permutation arithmetic).

GAP's workloads multiply large permutations: ``r[i] = p[q[i]]`` sweeps three
big arrays, one of them gathered through data-dependent indices.  Because
the permutations stay fixed across products in an orbit computation, the
gather's irregular address sequence *repeats* — a mix of sequential streams
(``q``, ``r``) and repeating irregular accesses (``p`` gather), which is
the "mix of both patterns" Figure 5 reports for Gap.
"""

from __future__ import annotations

import random

from repro.workloads.heap import Heap
from repro.workloads.trace import Trace, TraceBuilder

NAME = "gap"
SUITE = "SpecInt2000"
PROBLEM = "Group theory solver"
INPUT = "Rako subset (scaled)"

DEFAULT_DEGREE = 36000
#: Floor: the gathered element records alone (30000 x 32 B = 960 KB) plus
#: the index/result streams keep every product missing in the L2.
MIN_DEGREE = 30000
DEFAULT_PRODUCTS = 6
ELEM_BYTES = 4
#: The gathered group-element records (32 B each): large enough that the
#: data-dependent gather misses in the L2 and — because the permutations
#: are fixed — misses in the *same repeating order* every product.
RECORD_BYTES = 32
#: The orbit computation cycles through this many distinct permutations.
NUM_PERMUTATIONS = 3


def generate(scale: float = 1.0, seed: int = 23) -> Trace:
    rng = random.Random(seed)
    degree = max(MIN_DEGREE, int(DEFAULT_DEGREE * scale))
    products = max(3, round(DEFAULT_PRODUCTS * scale))

    heap = Heap()
    perm_arrays = [heap.alloc_array(degree, ELEM_BYTES)
                   for _ in range(NUM_PERMUTATIONS)]
    elements = heap.alloc_array(degree, RECORD_BYTES)
    result = heap.alloc_array(degree, ELEM_BYTES)
    workspace = heap.alloc_array(degree, ELEM_BYTES)

    # Fixed permutations: the gather pattern repeats product after product.
    perms = []
    for _ in range(NUM_PERMUTATIONS):
        perm = list(range(degree))
        rng.shuffle(perm)
        perms.append(perm)

    tb = TraceBuilder()
    for step in range(products):
        q_idx = step % NUM_PERMUTATIONS
        p_idx = (step + 1) % NUM_PERMUTATIONS
        _permutation_product(tb, degree, perms[q_idx],
                             perm_arrays[q_idx], elements, result)
        _orbit_scan(tb, degree, result, workspace)
    return tb.build(NAME)


def _permutation_product(tb: TraceBuilder, degree: int, q_values: list[int],
                         q: int, elements: int, r: int) -> None:
    """r[i] = elements[q[i]]: two streams plus a repeating irregular
    gather of 16 B group-element records."""
    for i in range(0, degree, 2):  # unrolled by two (shared lines)
        # The GAP interpreter does substantial bookkeeping per point
        # (handle dereferencing, bag headers), so computation per gather
        # is non-trivial.
        tb.compute(9)
        tb.load(q + i * ELEM_BYTES)
        tb.load(elements + q_values[i] * RECORD_BYTES, dependent=True)
        tb.store(r + i * ELEM_BYTES)


def _orbit_scan(tb: TraceBuilder, degree: int, r: int, w: int) -> None:
    """Sequential pass marking orbit membership (pure streaming)."""
    for i in range(0, degree, 8):
        tb.compute(4)
        tb.load(r + i * ELEM_BYTES)
        tb.store(w + i * ELEM_BYTES)
