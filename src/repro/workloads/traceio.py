"""Trace serialization.

Traces can be expensive to regenerate (the mini-applications actually run
their algorithms), so the harness can persist them.  The format is a
compact binary container:

* a one-line JSON header (magic, version, name, reference count),
* four numpy arrays — addresses (uint64), flags (uint8: bit 0 = write,
  bit 1 = dependent), and computation cycles (uint32) — written with
  ``numpy.savez_compressed``.

The format round-trips exactly (``load(save(t)) == t``) and is versioned
so future extensions stay readable.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.workloads.trace import MemRef, Trace

MAGIC = "repro-trace"
VERSION = 1

_WRITE_BIT = 0x1
_DEP_BIT = 0x2


def save_trace(trace: Trace, path: str | Path) -> None:
    """Write ``trace`` to ``path`` (conventionally ``*.trc.npz``)."""
    path = Path(path)
    n = len(trace)
    addrs = np.empty(n, dtype=np.uint64)
    flags = np.empty(n, dtype=np.uint8)
    comps = np.empty(n, dtype=np.uint32)
    for i, ref in enumerate(trace):
        addrs[i] = ref.addr
        flags[i] = ((_WRITE_BIT if ref.is_write else 0)
                    | (_DEP_BIT if ref.dependent else 0))
        comps[i] = ref.comp_cycles
    header = json.dumps({"magic": MAGIC, "version": VERSION,
                         "name": trace.name, "refs": n})
    np.savez_compressed(path, header=np.frombuffer(
        header.encode(), dtype=np.uint8), addrs=addrs, flags=flags,
        comps=comps)


def load_trace(path: str | Path) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    path = Path(path)
    with np.load(path) as data:
        header = json.loads(bytes(data["header"]).decode())
        if header.get("magic") != MAGIC:
            raise ValueError(f"{path} is not a repro trace file")
        if header.get("version") != VERSION:
            raise ValueError(
                f"unsupported trace version {header.get('version')} in {path}")
        addrs = data["addrs"]
        flags = data["flags"]
        comps = data["comps"]
    if not (len(addrs) == len(flags) == len(comps) == header["refs"]):
        raise ValueError(f"corrupt trace file: {path}")
    refs = [MemRef(int(a), bool(f & _WRITE_BIT), int(c), bool(f & _DEP_BIT))
            for a, f, c in zip(addrs, flags, comps)]
    return Trace(refs, name=header.get("name", ""))
