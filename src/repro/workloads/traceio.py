"""Trace serialization.

Traces can be expensive to regenerate (the mini-applications actually run
their algorithms), so the harness can persist them.  The format is a
compact binary container:

* a one-line JSON header (magic, version, name, reference count),
* four numpy arrays — addresses (uint64), flags (uint8: bit 0 = write,
  bit 1 = dependent), and computation cycles (uint32) — written with
  ``numpy.savez_compressed``.

The format round-trips exactly (``load(save(t)) == t``) and is versioned
so future extensions stay readable.
"""

from __future__ import annotations

import json
import zipfile
from pathlib import Path

import numpy as np

from repro.workloads.trace import MemRef, Trace

MAGIC = "repro-trace"
VERSION = 1


class TraceFormatError(ValueError):
    """``load_trace`` was given a file that is not a valid trace.

    Subclasses :class:`ValueError` so pre-existing callers catching that
    keep working; the message always names the offending file and what is
    wrong with it (wrong magic, unsupported version, truncation, missing
    arrays, or inconsistent reference counts).
    """

_WRITE_BIT = 0x1
_DEP_BIT = 0x2


def save_trace(trace: Trace, path: str | Path) -> None:
    """Write ``trace`` to ``path`` (conventionally ``*.trc.npz``)."""
    path = Path(path)
    n = len(trace)
    addrs = np.empty(n, dtype=np.uint64)
    flags = np.empty(n, dtype=np.uint8)
    comps = np.empty(n, dtype=np.uint32)
    for i, ref in enumerate(trace):
        addrs[i] = ref.addr
        flags[i] = ((_WRITE_BIT if ref.is_write else 0)
                    | (_DEP_BIT if ref.dependent else 0))
        comps[i] = ref.comp_cycles
    header = json.dumps({"magic": MAGIC, "version": VERSION,
                         "name": trace.name, "refs": n})
    np.savez_compressed(path, header=np.frombuffer(
        header.encode(), dtype=np.uint8), addrs=addrs, flags=flags,
        comps=comps)


def load_trace(path: str | Path) -> Trace:
    """Read a trace previously written by :func:`save_trace`.

    Raises :class:`TraceFormatError` (a :class:`ValueError`) with a
    descriptive message on anything that is not a well-formed trace:
    truncated or non-zip bytes, a missing or undecodable header, wrong
    magic, an unsupported version, missing arrays, or array lengths that
    disagree with the header's reference count.  A missing file still
    raises :class:`FileNotFoundError`.
    """
    path = Path(path)
    try:
        archive = np.load(path)
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, OSError, ValueError, EOFError) as exc:
        raise TraceFormatError(
            f"{path} is truncated or not a repro trace archive: {exc}"
        ) from exc
    with archive as data:
        missing = [k for k in ("header", "addrs", "flags", "comps")
                   if k not in data.files]
        if missing:
            raise TraceFormatError(
                f"{path} is not a repro trace file: missing "
                f"{', '.join(missing)} (has: {', '.join(data.files) or 'nothing'})")
        try:
            header = json.loads(bytes(data["header"]).decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise TraceFormatError(
                f"{path} has a corrupt trace header: {exc}") from exc
        if not isinstance(header, dict) or header.get("magic") != MAGIC:
            raise TraceFormatError(f"{path} is not a repro trace file "
                                   f"(bad magic {header!r:.60})")
        if header.get("version") != VERSION:
            raise TraceFormatError(
                f"unsupported trace version {header.get('version')!r} in "
                f"{path} (this build reads version {VERSION})")
        refs_declared = header.get("refs")
        if not isinstance(refs_declared, int) or refs_declared < 0:
            raise TraceFormatError(
                f"{path} has a corrupt reference count: {refs_declared!r}")
        try:
            addrs = data["addrs"]
            flags = data["flags"]
            comps = data["comps"]
        except (zipfile.BadZipFile, OSError, ValueError) as exc:
            raise TraceFormatError(
                f"{path} is truncated: cannot read trace arrays: {exc}"
            ) from exc
    if not (len(addrs) == len(flags) == len(comps) == refs_declared):
        raise TraceFormatError(
            f"corrupt trace file: {path} declares {refs_declared} refs but "
            f"holds {len(addrs)} addrs / {len(flags)} flags / "
            f"{len(comps)} comps (truncated write?)")
    refs = [MemRef(int(a), bool(f & _WRITE_BIT), int(c), bool(f & _DEP_BIT))
            for a, f, c in zip(addrs, flags, comps)]
    return Trace(refs, name=header.get("name", ""))
