"""Parser — SPECint2000 word processing (link grammar parser).

The parser spends its memory time in dictionary lookups: every word of the
input descends a binary search tree of scattered dictionary nodes
(dependent pointer chasing), then walks the word's expression list.  Word
frequencies follow a Zipf distribution, so popular words repeat their exact
lookup path — partially repeating, non-sequential miss sequences with
moderate pair-based predictability, as Figure 5 shows for Parser.
"""

from __future__ import annotations

import math
import random

from repro.workloads.heap import Heap
from repro.workloads.trace import Trace, TraceBuilder

NAME = "parser"
SUITE = "SpecInt2000"
PROBLEM = "Word processing"
INPUT = "Subset of train (scaled)"

DEFAULT_VOCABULARY = 18000
#: The dictionary does not shrink with scale: its ~2.2 MB of scattered
#: dictionary + expression nodes must exceed the L2 by enough that a
#: repeated word re-misses along several nodes of its lookup path
#: (cold-miss-only streams have nothing to correlate), while the
#: vocabulary stays small enough relative to the text that a good
#: fraction of word instances are repeats.
MIN_VOCABULARY = 18000
DEFAULT_WORDS = 16000
MIN_WORDS = 10000
#: Dictionary nodes are two lines: the tree-node line (pointers, key hash)
#: walked during the descent, and the word-string line compared on a match.
DICT_NODE_BYTES = 128
EXPR_NODE_BYTES = 32
ZIPF_EXPONENT = 0.9


def generate(scale: float = 1.0, seed: int = 19) -> Trace:
    rng = random.Random(seed)
    vocabulary = max(MIN_VOCABULARY, int(DEFAULT_VOCABULARY * scale))
    num_words = max(MIN_WORDS, int(DEFAULT_WORDS * scale))

    heap = Heap()
    node_addrs = heap.alloc_nodes(vocabulary, DICT_NODE_BYTES, rng)
    # Expression lists: 1-4 scattered nodes per dictionary word.
    expr_addrs = [[heap.alloc(EXPR_NODE_BYTES)
                   for _ in range(1 + (w % 4))] for w in range(vocabulary)]

    # A balanced BST over word ids: the lookup path of word w is the binary
    # search descent to w.
    order = sorted(range(vocabulary))
    tree_paths = _bst_paths(order)

    weights = [1.0 / (rank + 1) ** ZIPF_EXPONENT for rank in range(vocabulary)]
    word_ids = rng.choices(range(vocabulary), weights=weights, k=num_words)

    tb = TraceBuilder()
    for word in word_ids:
        # Tokenise: touch the input buffer (sequential, light).
        tb.compute(6)
        for node in tree_paths[word]:
            tb.compute(3)
            tb.load(node_addrs[node], dependent=True)
        # The matched entry's word string (its second line) is compared.
        tb.compute(2)
        tb.load(node_addrs[word] + 64, dependent=True)
        for expr in expr_addrs[word]:
            tb.compute(4)
            tb.load(expr, dependent=True)
        tb.compute(8)  # linkage evaluation
    return tb.build(NAME)


def _bst_paths(order: list[int]) -> list[list[int]]:
    """Binary-search descent path (list of visited ids) for every word."""
    paths: list[list[int]] = [[] for _ in order]

    def descend(lo: int, hi: int, prefix: list[int]) -> None:
        if lo > hi:
            return
        mid = (lo + hi) // 2
        path = prefix + [order[mid]]
        paths[order[mid]] = path
        descend(lo, mid - 1, path)
        descend(mid + 1, hi, path)

    # Iterative-friendly recursion depth: log2(vocabulary) is small.
    import sys
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 10000))
    try:
        descend(0, len(order) - 1, [])
    finally:
        sys.setrecursionlimit(old_limit)
    return paths
