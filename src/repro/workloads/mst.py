"""MST — Olden minimum spanning tree (1024 nodes, scaled).

Olden's MST keeps, for every vertex, a hash table mapping the other
vertices to edge weights.  The Prim-style main loop repeatedly scans all
not-yet-inserted vertices and, for each, performs a hash lookup against the
most recently inserted vertex — chasing the bucket chain of a scattered
hash table.

Within a phase the key (and therefore the bucket index) is fixed, so the
walk visits, for every remaining vertex in list order, that vertex's
record, its bucket-head line, and the scattered nodes of one bucket chain.
Whenever a later phase hashes to the same bucket the whole miss sequence
recurs — completely non-sequential but strongly repeating, which is why
the paper's Repl-with-NumLevels=4 customisation pays off on MST and why
its Table 2 correlation table is among the largest.
"""

from __future__ import annotations

import random

from repro.workloads.heap import Heap
from repro.workloads.trace import Trace, TraceBuilder

NAME = "mst"
SUITE = "Olden"
PROBLEM = "Finding minimum spanning tree"
INPUT = "1024 nodes (scaled)"

DEFAULT_VERTICES = 320
#: Floor: 200 vertices give ~2 MB of scattered hash-chain nodes — well
#: beyond the L2 at any scale (MST has the suite's largest footprint).
MIN_VERTICES = 200
HASH_ENTRY_BYTES = 48
BUCKET_HEAD_BYTES = 16
BUCKETS_PER_TABLE = 16
VERTEX_BYTES = 64
#: Chain length per bucket (each node of the chain is heap-scattered).
#: Longer chains make the deterministic within-chain pairs dominate the
#: miss stream, which is what gives MST its high pair-based predictability.
CHAIN_RANGE = (3, 5)


def generate(scale: float = 1.0, seed: int = 17) -> Trace:
    rng = random.Random(seed)
    num_vertices = max(MIN_VERTICES, int(DEFAULT_VERTICES * scale))

    heap = Heap()
    vertex_addrs = heap.alloc_nodes(num_vertices, VERTEX_BYTES, rng)
    # Per-vertex hash tables: bucket head array + one scattered chain of
    # entry nodes per bucket.
    bucket_arrays = [heap.alloc_array(BUCKETS_PER_TABLE, BUCKET_HEAD_BYTES)
                     for _ in range(num_vertices)]
    chains: list[list[list[int]]] = []
    for v in range(num_vertices):
        table = []
        for b in range(BUCKETS_PER_TABLE):
            length = rng.randint(*CHAIN_RANGE)
            table.append([heap.alloc(HASH_ENTRY_BYTES)
                          for _ in range(length)])
        chains.append(table)

    tb = TraceBuilder()
    in_tree = [False] * num_vertices
    in_tree[0] = True
    last_inserted = 0
    for _ in range(num_vertices - 1):
        bucket = _hash(last_inserted)
        best, best_weight = -1, float("inf")
        for u in range(num_vertices):
            if in_tree[u]:
                continue
            tb.compute(3)
            tb.load(vertex_addrs[u])
            weight = _hash_lookup(tb, bucket_arrays[u], chains[u],
                                  bucket, last_inserted)
            if weight < best_weight:
                best, best_weight = u, weight
                tb.compute(2)
        if best < 0:
            break
        in_tree[best] = True
        last_inserted = best
        tb.compute(6)
        tb.store(vertex_addrs[best] + 8)
    return tb.build(NAME)


def _hash(key: int) -> int:
    return (key * 2654435761) % BUCKETS_PER_TABLE


def _hash_lookup(tb: TraceBuilder, buckets: int, table: list[list[int]],
                 bucket: int, key: int) -> float:
    """Walk one bucket chain of one vertex's hash table."""
    tb.compute(2)
    tb.load(buckets + bucket * BUCKET_HEAD_BYTES)
    chain = table[bucket]
    # The sought entry sits near the end of the chain: most lookups walk
    # nearly the whole chain (the key is present in every table).
    stop = len(chain) - (key & 1)
    for entry in chain[:stop]:
        tb.compute(2)
        tb.load(entry, dependent=True)
    return ((key * 131 + bucket * 17) % 1000) / 1000.0
