"""Tree — Barnes-Hut N-body treecode (Univ. of Hawaii, 2048 bodies).

Every force-computation step walks the quadtree once per body: pointer
chasing from the root, opening cells that are too close and taking
centre-of-mass approximations for the rest.  Tree nodes are heap-scattered,
so the walk has no sequential structure (Figure 5: Seq4 predicts nothing
for Tree), but bodies that are spatially close repeat almost the same
traversal, giving pair-based prefetchers their predictability.

Tree is one of the two applications with the *smallest* speedups in the
paper: its working set barely exceeds the L2 and prefetches conflict with
resident lines.  We reproduce that by keeping the footprint near the
512 KB L2 size.
"""

from __future__ import annotations

import random

from repro.workloads.heap import Heap
from repro.workloads.trace import Trace, TraceBuilder

NAME = "tree"
SUITE = "Univ. of Hawaii"
PROBLEM = "Barnes-Hut N-body problem"
INPUT = "2048 bodies (scaled)"

DEFAULT_BODIES = 3072
MIN_BODIES = 2400
DEFAULT_STEPS = 2
#: The treecode rebuilds its cells each step, recycling node storage: a
#: cell covering the same region of space gets the same address step after
#: step (freelist reuse), so the walk's miss sequence repeats — which is
#: what the correlation table learns.  Addresses are derived from the
#: cell's tree path into a fixed arena of slots.
CELL_ARENA_BASE = 0x4000_0000
CELL_ARENA_SLOTS = 8192
NODE_BYTES = 128   # cell: centre of mass + quadrant pointers (two lines)
BODY_BYTES = 128   # position line + velocity/acceleration line
#: Barnes-Hut opening angle; smaller opens more cells (longer walks).
THETA = 1.2


class _Cell:
    __slots__ = ("centre", "half", "children", "body", "body_pos", "addr",
                 "path")

    def __init__(self, centre: tuple[float, float], half: float,
                 path: int = 1) -> None:
        self.centre = centre
        self.half = half
        self.children: list[_Cell | None] = [None, None, None, None]
        self.body: int | None = None
        self.body_pos: tuple[float, float] | None = None
        self.path = path       # 1-rooted quadrant-digit path key
        self.addr = _cell_addr(path)


def _cell_addr(path: int) -> int:
    """Stable arena address for the cell at tree-path ``path``.

    A Fibonacci-hash spreads paths over the arena slots; collisions model
    freelist reuse across unrelated cells and are harmless noise.
    """
    slot = (path * 2654435761) % CELL_ARENA_SLOTS
    return CELL_ARENA_BASE + slot * NODE_BYTES


def generate(scale: float = 1.0, seed: int = 13) -> Trace:
    rng = random.Random(seed)
    num_bodies = max(MIN_BODIES, int(DEFAULT_BODIES * scale))
    steps = max(2, round(DEFAULT_STEPS * scale))

    positions = [(rng.random(), rng.random()) for _ in range(num_bodies)]
    # Real treecodes process bodies in space-filling-curve order so that
    # consecutive bodies traverse nearly the same cells — that locality is
    # also what makes the miss sequence repeat body after body.
    positions.sort(key=_morton)
    body_heap = Heap()
    body_addrs = body_heap.alloc_nodes(num_bodies, BODY_BYTES, rng)
    tb = TraceBuilder()
    for _ in range(steps):
        # Rebuild the tree each step; recycled (path-keyed) cell addresses
        # make the walk's miss sequence repeat, slightly perturbed by body
        # movement.
        root, cells = _build_tree(tb, positions, body_addrs)
        _compute_forces(tb, positions, root, body_addrs)
        positions = [(min(1.0, max(0.0, x + rng.uniform(-0.004, 0.004))),
                      min(1.0, max(0.0, y + rng.uniform(-0.004, 0.004))))
                     for x, y in positions]
    return tb.build(NAME)


def _morton(pos: tuple[float, float], bits: int = 10) -> int:
    """Interleaved-bit (Z-order) key of a position in the unit square."""
    x = min((1 << bits) - 1, int(pos[0] * (1 << bits)))
    y = min((1 << bits) - 1, int(pos[1] * (1 << bits)))
    key = 0
    for b in range(bits):
        key |= ((x >> b) & 1) << (2 * b)
        key |= ((y >> b) & 1) << (2 * b + 1)
    return key


def _build_tree(tb: TraceBuilder, positions, body_addrs: list[int]):
    """Insert every body into a fresh quadtree (the tree-build phase)."""
    root = _Cell((0.5, 0.5), 0.5, path=1)
    cells = [root]
    for idx, pos in enumerate(positions):
        tb.compute(4)
        tb.load(body_addrs[idx])
        _insert(tb, root, pos, idx, cells)
    return root, cells


def _insert(tb: TraceBuilder, cell: _Cell, pos, body: int,
            cells: list[_Cell], depth: int = 0) -> None:
    tb.compute(3)
    tb.load(cell.addr, dependent=True)
    if depth > 16:
        cell.body = body
        cell.body_pos = pos
        return
    quad = _quadrant(cell, pos)
    child = cell.children[quad]
    if child is None:
        leaf = _Cell(_child_centre(cell, quad), cell.half / 2,
                     path=cell.path * 4 + quad)
        leaf.body = body
        leaf.body_pos = pos
        cell.children[quad] = leaf
        cells.append(leaf)
        tb.compute(2)
        tb.store(cell.addr + 32)
        return
    if child.body is not None and all(c is None for c in child.children):
        # Split the leaf: push the resident body one level down.
        resident, resident_pos = child.body, child.body_pos
        child.body = None
        child.body_pos = None
        _insert(tb, child, _jitter(resident_pos, resident), resident,
                cells, depth + 1)
        _insert(tb, child, pos, body, cells, depth + 1)
        return
    _insert(tb, child, pos, body, cells, depth + 1)


def _compute_forces(tb: TraceBuilder, positions, root: _Cell,
                    body_addrs: list[int]) -> None:
    for idx, pos in enumerate(positions):
        tb.compute(5)
        tb.load(body_addrs[idx])
        _walk(tb, root, pos)
        tb.compute(4)
        tb.store(body_addrs[idx] + 64)  # acceleration, second body line


def _walk(tb: TraceBuilder, cell: _Cell, pos) -> None:
    tb.compute(4)
    tb.load(cell.addr, dependent=True)
    dx = cell.centre[0] - pos[0]
    dy = cell.centre[1] - pos[1]
    dist_sq = dx * dx + dy * dy + 1e-9
    size = cell.half * 2
    if size * size < THETA * THETA * dist_sq or all(
            c is None for c in cell.children):
        tb.compute(6)  # accumulate the far-field interaction
        return
    # Opening the cell reads its child-pointer line (second node line).
    tb.load(cell.addr + 64)
    for child in cell.children:
        if child is not None:
            _walk(tb, child, pos)


def _quadrant(cell: _Cell, pos) -> int:
    return (1 if pos[0] >= cell.centre[0] else 0) | (
        2 if pos[1] >= cell.centre[1] else 0)


def _child_centre(cell: _Cell, quad: int) -> tuple[float, float]:
    off = cell.half / 2
    return (cell.centre[0] + (off if quad & 1 else -off),
            cell.centre[1] + (off if quad & 2 else -off))


def _jitter(pos, body: int) -> tuple[float, float]:
    # Deterministic tiny displacement so two coincident bodies separate.
    return (pos[0] + ((body % 7) - 3) * 1e-6, pos[1] + ((body % 5) - 2) * 1e-6)
