"""The nine applications of the paper's Table 2, as trace generators."""

from repro.workloads.heap import Heap
from repro.workloads.registry import (
    APP_ORDER,
    WORKLOADS,
    WorkloadInfo,
    clear_trace_cache,
    get_trace,
    list_workloads,
    workload_info,
)
from repro.workloads.trace import MemRef, Trace, TraceBuilder

__all__ = [
    "Heap",
    "APP_ORDER",
    "WORKLOADS",
    "WorkloadInfo",
    "clear_trace_cache",
    "get_trace",
    "list_workloads",
    "workload_info",
    "MemRef",
    "Trace",
    "TraceBuilder",
]
