"""Equake — SPECfp2000 seismic wave propagation simulation.

Equake time-steps an unstructured finite-element mesh: each step performs a
sparse matrix-vector product over the stiffness matrix (streaming over the
CSR arrays plus an irregular-but-repeating gather of nodal displacements)
and dense vector updates over the nodal arrays.  The mesh is fixed, so the
irregular gather repeats identically every time step — the classic
"repeating irregular" pattern correlation prefetching thrives on, layered
over sequential CSR streams.
"""

from __future__ import annotations

import random

from repro.workloads.heap import Heap
from repro.workloads.trace import Trace, TraceBuilder

NAME = "equake"
SUITE = "SpecFP2000"
PROBLEM = "Seismic wave propagation simulation"
INPUT = "Test (scaled)"

DEFAULT_NODES = 2600
#: Floor keeping the stiffness-matrix footprint (~1 MB of 3x3 blocks at
#: 1600 nodes) beyond the L2 at any scale.
MIN_NODES = 1600
NNZ_PER_ROW = 14
DEFAULT_TIMESTEPS = 3
DOF = 3
_F8 = 8
_I4 = 4


def generate(scale: float = 1.0, seed: int = 31) -> Trace:
    rng = random.Random(seed)
    nodes = max(MIN_NODES, int(DEFAULT_NODES * scale))
    steps = max(2, round(DEFAULT_TIMESTEPS * scale))

    heap = Heap()
    # Stiffness matrix in CSR-ish block form: one 3x3 block per nonzero.
    k_values = heap.alloc_array(nodes * NNZ_PER_ROW * DOF * DOF, _F8)
    k_colidx = heap.alloc_array(nodes * NNZ_PER_ROW, _I4)
    disp = heap.alloc_array(nodes * DOF, _F8)
    disp_prev = heap.alloc_array(nodes * DOF, _F8)
    force = heap.alloc_array(nodes * DOF, _F8)
    mass = heap.alloc_array(nodes * DOF, _F8)

    # Unstructured mesh: mostly-local neighbours with some long edges.
    neighbours = [[_neighbour(rng, i, nodes) for _ in range(NNZ_PER_ROW)]
                  for i in range(nodes)]

    tb = TraceBuilder()
    for _ in range(steps):
        _smvp(tb, nodes, neighbours, k_values, k_colidx, disp, force)
        _time_integration(tb, nodes, disp, disp_prev, force, mass)
    return tb.build(NAME)


def _neighbour(rng: random.Random, i: int, nodes: int) -> int:
    if rng.random() < 0.8:
        return max(0, min(nodes - 1, i + rng.randint(-40, 40)))
    return rng.randrange(nodes)


def _smvp(tb: TraceBuilder, nodes: int, neighbours, k_values: int,
          k_colidx: int, disp: int, force: int) -> None:
    """The sparse matrix-vector product dominating each time step."""
    for i in range(nodes):
        for j, col in enumerate(neighbours[i]):
            k = i * NNZ_PER_ROW + j
            tb.compute(5)
            # One ref covers the 3x3 coefficient block (two lines, the
            # second folded into computation) plus the column index.
            tb.load(k_values + k * DOF * DOF * _F8)
            tb.load(k_colidx + k * _I4)
            tb.load(disp + col * DOF * _F8, dependent=True)
        tb.compute(4)
        tb.store(force + i * DOF * _F8)


def _time_integration(tb: TraceBuilder, nodes: int, disp: int,
                      disp_prev: int, force: int, mass: int) -> None:
    """Central-difference update: four sequential streams."""
    for i in range(0, nodes * DOF, 4):
        tb.compute(4)
        tb.load(force + i * _F8)
        tb.load(mass + i * _F8)
        tb.load(disp_prev + i * _F8)
        tb.store(disp + i * _F8)
