"""CG — NAS Parallel Benchmarks conjugate gradient (Class S, scaled).

The one *regular* application of the paper's suite.  CG's misses come from
streaming over the CSR sparse matrix (values + column indices), the
gather of ``x`` through the column indices, and the dense vector updates of
the CG iteration.  Everything is array-based and independent, and the
interleaving of several concurrent unit-stride streams is exactly what the
paper exploits in its CG customisation: the streams overwhelm a 4-register
processor-side prefetcher, while Seq1-in-the-ULMT sees the "unscrambled"
request chunks.

The matrix is banded-random (nonzeros near the diagonal), so the ``x``
gather mostly hits in cache and the miss stream is dominated by sequential
patterns — matching Figure 5, where sequential prefetching predicts
practically all of CG's L2 misses.
"""

from __future__ import annotations

import random

from repro.workloads.heap import Heap
from repro.workloads.trace import Trace, TraceBuilder

NAME = "cg"
SUITE = "NAS"
PROBLEM = "Conjugate gradient"
INPUT = "Class S (scaled)"

#: Default problem size (rows of the sparse matrix).
DEFAULT_N = 2200
#: Data-size floor keeping the footprint beyond the 512 KB L2 at any scale
#: (values 345 KB + colidx 173 KB + vectors 72 KB at the floor).
MIN_N = 1800
DEFAULT_NNZ_PER_ROW = 24
DEFAULT_ITERS = 4

_F8 = 8   # double
_I4 = 4   # int


def generate(scale: float = 1.0, seed: int = 7) -> Trace:
    """Run a scaled CG solve and return its memory trace.

    ``scale`` mostly controls the number of CG iterations (trace length);
    the data footprint shrinks only down to a floor that stays beyond the
    L2, so the miss-pattern character is scale-independent.
    """
    rng = random.Random(seed)
    n = max(MIN_N, int(DEFAULT_N * scale))
    nnz_per_row = DEFAULT_NNZ_PER_ROW
    iters = max(2, round(DEFAULT_ITERS * scale))

    heap = Heap()
    values = heap.alloc_array(n * nnz_per_row, _F8)
    colidx = heap.alloc_array(n * nnz_per_row, _I4)
    rowptr = heap.alloc_array(n + 1, _I4)
    vec_x = heap.alloc_array(n, _F8)
    vec_p = heap.alloc_array(n, _F8)
    vec_q = heap.alloc_array(n, _F8)
    vec_r = heap.alloc_array(n, _F8)
    vec_z = heap.alloc_array(n, _F8)

    # Banded-random sparsity: columns within +-bw of the diagonal.
    bandwidth = max(8, n // 10)
    columns = [[max(0, min(n - 1, i + rng.randint(-bandwidth, bandwidth)))
                for _ in range(nnz_per_row)]
               for i in range(n)]

    tb = TraceBuilder()
    for _ in range(iters):
        _spmv(tb, n, nnz_per_row, columns, values, colidx, rowptr,
              vec_p, vec_q)
        _dot(tb, n, vec_p, vec_q)
        _axpy(tb, n, vec_x, vec_p)
        _axpy(tb, n, vec_r, vec_q)
        _dot(tb, n, vec_r, vec_z)
        _axpy(tb, n, vec_p, vec_r)
    return tb.build(NAME)


def _spmv(tb: TraceBuilder, n: int, nnz_per_row: int, columns,
          values: int, colidx: int, rowptr: int, x: int, y: int) -> None:
    """y = A @ x over the CSR structure (the dominant phase)."""
    for i in range(n):
        tb.compute(2)
        tb.load(rowptr + i * _I4)
        # Inner loop unrolled by two: one trace record covers two nonzeros
        # (they share cache lines; the extra work lands in comp cycles).
        for j in range(0, nnz_per_row, 2):
            k = i * nnz_per_row + j
            tb.compute(6)
            tb.load(values + k * _F8)
            tb.load(colidx + k * _I4)
            tb.load(x + columns[i][j] * _F8)
        tb.compute(2)
        tb.store(y + i * _F8)


def _dot(tb: TraceBuilder, n: int, a: int, b: int) -> None:
    for i in range(0, n, 4):  # unrolled by 4: one ref per element pair
        tb.compute(3)
        tb.load(a + i * _F8)
        tb.load(b + i * _F8)


def _axpy(tb: TraceBuilder, n: int, y: int, x: int) -> None:
    for i in range(0, n, 4):
        tb.compute(3)
        tb.load(x + i * _F8)
        tb.load(y + i * _F8)
        tb.store(y + i * _F8)
