"""Memory reference traces.

A workload is executed once by an instrumented mini-implementation of the
application's algorithm (see the sibling modules) and produces a
:class:`Trace`: an ordered sequence of :class:`MemRef` records.  The timing
simulator then walks the trace.

Each reference carries:

``addr``
    Byte address of the access.
``is_write``
    Stores are non-blocking in the processor model but still occupy the
    memory system and are observed by the ULMT when they miss in L2.
``comp_cycles``
    Main-processor computation cycles attributable to the instructions
    executed since the previous memory reference (the ``Busy`` component of
    Figure 7).
``dependent``
    True when the address of this reference was produced by the immediately
    preceding load (pointer chasing).  Dependent references cannot overlap
    with their producer miss, which is what makes the [200, 280) bin of
    Figure 6 dominate.
"""

from __future__ import annotations

from typing import Iterable, Iterator, NamedTuple


class MemRef(NamedTuple):
    """One memory reference of the main-processor instruction stream."""

    addr: int
    is_write: bool
    comp_cycles: int
    dependent: bool


class Trace:
    """An ordered container of :class:`MemRef` records with summary stats."""

    def __init__(self, refs: Iterable[MemRef], name: str = "") -> None:
        self.refs: list[MemRef] = list(refs)
        self.name = name

    def __len__(self) -> int:
        return len(self.refs)

    def __iter__(self) -> Iterator[MemRef]:
        return iter(self.refs)

    def __getitem__(self, idx):
        return self.refs[idx]

    @property
    def total_comp_cycles(self) -> int:
        """Total Busy cycles the trace charges between references."""
        return sum(r.comp_cycles for r in self.refs)

    @property
    def num_loads(self) -> int:
        """Number of load references."""
        return sum(1 for r in self.refs if not r.is_write)

    @property
    def num_stores(self) -> int:
        """Number of store references."""
        return sum(1 for r in self.refs if r.is_write)

    @property
    def num_dependent(self) -> int:
        """Number of pointer-chasing (producer-dependent) references."""
        return sum(1 for r in self.refs if r.dependent)

    def footprint_lines(self, line_bytes: int = 64) -> int:
        """Number of distinct cache lines touched."""
        return len({r.addr // line_bytes for r in self.refs})

    def line_addresses(self, line_bytes: int = 64) -> list[int]:
        """Line-granular address sequence (used by prediction analyses)."""
        return [r.addr // line_bytes for r in self.refs]


class TraceBuilder:
    """Accumulates references while a workload mini-implementation runs.

    The builder keeps the computation-cycle counter between references so the
    workloads only say *what* they touch and *how much work* happens in
    between::

        tb = TraceBuilder()
        tb.compute(4)
        tb.load(node_addr)
        tb.load(node_addr + 8, dependent=True)   # chased pointer
        trace = tb.build("mcf")
    """

    def __init__(self) -> None:
        self._refs: list[MemRef] = []
        self._pending_comp = 0

    def compute(self, cycles: int) -> None:
        """Charge ``cycles`` of computation before the next reference."""
        if cycles < 0:
            raise ValueError(f"negative computation cycles: {cycles}")
        self._pending_comp += cycles

    def load(self, addr: int, dependent: bool = False) -> None:
        """Record a load of ``addr``; ``dependent`` marks a pointer chase
        (the address came from the immediately preceding load)."""
        self._append(addr, is_write=False, dependent=dependent)

    def store(self, addr: int, dependent: bool = False) -> None:
        """Record a store to ``addr`` (non-blocking in the core model but
        visible to the memory system and the ULMT)."""
        self._append(addr, is_write=True, dependent=dependent)

    def _append(self, addr: int, is_write: bool, dependent: bool) -> None:
        if addr < 0:
            raise ValueError(f"negative address: {addr}")
        self._refs.append(MemRef(addr, is_write, self._pending_comp, dependent))
        self._pending_comp = 0

    def __len__(self) -> int:
        return len(self._refs)

    def build(self, name: str = "") -> Trace:
        return Trace(self._refs, name=name)
