"""FT — NAS Parallel Benchmarks 3-D FFT (Class S, scaled).

FT's misses come from the dimension-wise FFT sweeps over a 3-D complex
grid: the unit-stride dimension streams sequentially, while the other two
dimensions walk the array with large power-of-two strides — every access a
new cache line, nothing a unit-stride stream detector can catch, but a
sequence that repeats exactly every iteration, which pair-based schemes
learn.  The paper reports FT with a mix of sequential and non-sequential
patterns.
"""

from __future__ import annotations

from repro.workloads.heap import Heap
from repro.workloads.trace import Trace, TraceBuilder

NAME = "ft"
SUITE = "NAS"
PROBLEM = "3D Fourier transform"
INPUT = "Class S (scaled)"

DEFAULT_NX = 64
DEFAULT_NY = 32
DEFAULT_NZ = 32
#: Grid floor: 64 x 32 x 24 complex points = 768 KB, beyond the L2.
MIN_NZ = 24
DEFAULT_ITERS = 2
COMPLEX_BYTES = 16


def generate(scale: float = 1.0, seed: int = 29) -> Trace:
    nx = DEFAULT_NX
    ny = DEFAULT_NY
    nz = max(MIN_NZ, int(DEFAULT_NZ * scale))
    iters = max(2, round(DEFAULT_ITERS * scale))

    heap = Heap()
    grid = heap.alloc_array(nx * ny * nz, COMPLEX_BYTES)
    twiddle = heap.alloc_array(max(nx, ny, nz), COMPLEX_BYTES)

    tb = TraceBuilder()
    for _ in range(iters):
        _fft_dim_x(tb, grid, twiddle, nx, ny, nz)
        _fft_dim_y(tb, grid, twiddle, nx, ny, nz)
        _fft_dim_z(tb, grid, twiddle, nx, ny, nz)
        _evolve(tb, grid, nx * ny * nz)
    return tb.build(NAME)


def _addr(grid: int, nx: int, ny: int, x: int, y: int, z: int) -> int:
    return grid + ((z * ny + y) * nx + x) * COMPLEX_BYTES


def _fft_dim_x(tb: TraceBuilder, grid: int, twiddle: int,
               nx: int, ny: int, nz: int) -> None:
    """Unit-stride butterflies along x (sequential streams)."""
    for z in range(nz):
        for y in range(ny):
            for x in range(0, nx, 4):  # radix-4 style: one ref per group
                tb.compute(6)
                tb.load(_addr(grid, nx, ny, x, y, z))
                tb.load(twiddle + (x % nx) * COMPLEX_BYTES)
                tb.store(_addr(grid, nx, ny, x, y, z))


def _fft_dim_y(tb: TraceBuilder, grid: int, twiddle: int,
               nx: int, ny: int, nz: int) -> None:
    """Stride-nx butterflies along y: every access a new line."""
    for z in range(nz):
        for x in range(0, nx, 2):
            for y in range(0, ny, 2):
                tb.compute(6)
                tb.load(_addr(grid, nx, ny, x, y, z))
                tb.store(_addr(grid, nx, ny, x, y, z))


def _fft_dim_z(tb: TraceBuilder, grid: int, twiddle: int,
               nx: int, ny: int, nz: int) -> None:
    """Stride-nx*ny butterflies along z: large power-of-two strides."""
    for y in range(0, ny, 2):
        for x in range(0, nx, 2):
            for z in range(nz):
                tb.compute(6)
                tb.load(_addr(grid, nx, ny, x, y, z))
                tb.store(_addr(grid, nx, ny, x, y, z))


def _evolve(tb: TraceBuilder, grid: int, total: int) -> None:
    """Pointwise exponential evolution: pure sequential sweep."""
    for i in range(0, total, 4):
        tb.compute(5)
        tb.load(grid + i * COMPLEX_BYTES)
        tb.store(grid + i * COMPLEX_BYTES)
