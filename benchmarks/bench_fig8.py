"""Benchmark/regeneration of Figure 8 (memory processor placement)."""

from conftest import BENCH_APPS, BENCH_SCALE, run_once

from repro.experiments import fig8


def bench_fig8(benchmark, fresh_caches):
    result = run_once(benchmark, fig8.run, scale=BENCH_SCALE,
                      apps=BENCH_APPS)
    avg = result["avg_speedups"]
    dram = avg["conven4+repl"]
    nb = avg["conven4+replMC"]
    print(f"\nFigure 8 (scaled) — average speedup: DRAM {dram:.2f}, "
          f"North Bridge {nb:.2f} (paper: 1.46 vs 1.41)")
    # Paper: the North Bridge placement loses only a little.
    assert nb <= dram * 1.02
    assert nb > dram * 0.80