"""Shared fixtures for the benchmark harness.

Each ``bench_*`` module regenerates one table or figure of the paper at a
reduced workload scale (the shapes hold; wall-clock stays in seconds).
The result cache is cleared before every measured round so pytest-benchmark
measures real simulation work, and each benchmark prints the paper-vs-
measured headline after running.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import clear_result_cache
from repro.workloads.registry import clear_trace_cache

#: Scale used by the benchmark harness.  Large enough that workload
#: footprints exceed the L2 and miss sequences repeat; small enough that a
#: full figure regenerates in seconds.
BENCH_SCALE = 0.4

#: A representative application subset for per-figure benches: one regular
#: (cg), two irregular pointer chasers (mcf, tree), one conflict-limited
#: (sparse).
BENCH_APPS = ["cg", "mcf", "tree", "sparse"]


@pytest.fixture
def fresh_caches():
    """Clear simulation result caches so each round does real work."""
    clear_result_cache()
    yield
    clear_result_cache()


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    Full-figure regenerations are far too heavy for statistical rounds;
    one timed round per figure matches how the harness is meant to be used
    (``pytest benchmarks/ --benchmark-only``).
    """
    def target():
        clear_result_cache()
        return fn(*args, **kwargs)

    return benchmark.pedantic(target, iterations=1, rounds=1)
