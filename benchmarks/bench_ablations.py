"""Ablation benches: the design-choice sweeps DESIGN.md calls out."""

from conftest import BENCH_SCALE, run_once

from repro.experiments import ablations


def bench_ablation_num_levels(benchmark, fresh_caches):
    points = run_once(benchmark, ablations.sweep_num_levels, "mcf",
                      scale=BENCH_SCALE, levels=(1, 3, 4))
    print("\nNumLevels sweep (mcf): " +
          "  ".join(f"L{p.value}={p.speedup:.2f}" for p in points))
    # More levels must not reduce coverage on a strongly repeating app.
    assert points[-1].coverage >= points[0].coverage - 0.02


def bench_ablation_table_size(benchmark, fresh_caches):
    points = run_once(benchmark, ablations.sweep_num_rows, "mcf",
                      scale=BENCH_SCALE, rows=(1024, 16384, 65536))
    print("\nNumRows sweep (mcf): " +
          "  ".join(f"{p.value}={p.speedup:.2f}" for p in points))
    # An under-sized table (row thrashing) cannot beat a right-sized one.
    assert points[0].speedup <= points[-1].speedup + 0.05


def bench_ablation_queue_depth(benchmark, fresh_caches):
    points = run_once(benchmark, ablations.sweep_queue_depth, "cg",
                      scale=BENCH_SCALE, depths=(2, 16))
    print("\nQueue-depth sweep (cg): " +
          "  ".join(f"{p.value}={p.speedup:.2f} ({p.detail})"
                    for p in points))


def bench_ablation_filter(benchmark, fresh_caches):
    points = run_once(benchmark, ablations.sweep_filter, "mcf",
                      scale=BENCH_SCALE, sizes=(1, 32))
    print("\nFilter sweep (mcf): " +
          "  ".join(f"{p.value}={p.speedup:.2f} ({p.detail})"
                    for p in points))


def bench_ablation_rob(benchmark, fresh_caches):
    points = run_once(benchmark, ablations.sweep_rob, "cg",
                      scale=BENCH_SCALE, robs=(4, 8, 16))
    print("\nROB sweep (cg): " +
          "  ".join(f"{p.value}={p.speedup:.2f}" for p in points))
    # Prefetching gains shrink as the baseline core gets more MLP.
    assert points[0].speedup >= points[-1].speedup - 0.05
