"""Benchmark/regeneration of Figure 5 (miss predictability by level)."""

from conftest import BENCH_APPS, BENCH_SCALE, run_once

from repro.experiments import fig5


def bench_fig5(benchmark, fresh_caches):
    result = run_once(benchmark, fig5.run, scale=BENCH_SCALE,
                      apps=BENCH_APPS)
    avg = result["averages"]
    print("\nFigure 5 (scaled) — average correct prediction by level:")
    for predictor, levels in avg.items():
        print(f"  {predictor:10s} " +
              "  ".join(f"L{k + 1}={v:.2f}" for k, v in enumerate(levels)))
    # Shape assertions from the paper: pair-based beats sequential on the
    # irregular apps; Repl holds accuracy across levels better than Chain.
    mcf = result["apps"]["mcf"]
    assert mcf["repl"].levels[0] > mcf["seq4"].levels[0]
    assert avg["repl"][2] >= avg["chain"][2]
