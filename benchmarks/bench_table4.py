"""Benchmark/regeneration of Table 4 (algorithm parameters)."""

from repro.experiments import table4


def bench_table4(benchmark):
    rows = benchmark(table4.run)
    assert len(rows) == 6
    names = [r[1] for r in rows]
    assert names == ["Base", "Chain", "Repl", "Seq1", "Seq4", "Conven4"]
    print("\nTable 4 regenerated: " + ", ".join(names))
