"""Benches for the paper's future-work customisations implemented here:
conflict-aware gating (targets Sparse/Tree) and adaptive selection."""

from conftest import BENCH_SCALE, run_once

from repro.experiments.common import cached_run, clear_result_cache
from repro.sim.config import SystemConfig
from repro.sim.driver import run_simulation


def bench_conflict_aware_on_sparse(benchmark, fresh_caches):
    """The conclusion's prediction: conflict elimination should help the
    conflict-limited applications."""
    def study():
        results = {}
        for app in ("sparse", "tree"):
            baseline = cached_run(app, "nopref", BENCH_SCALE)
            plain = run_simulation(app, "repl", scale=BENCH_SCALE)
            guarded = run_simulation(
                app, SystemConfig(name="conflict-repl",
                                  ulmt_algorithm="conflict:repl"),
                scale=BENCH_SCALE)
            results[app] = (
                baseline.execution_time / plain.execution_time,
                baseline.execution_time / guarded.execution_time,
                guarded,
            )
        return results

    results = run_once(benchmark, study)
    print("\nConflict-aware gating (paper future work):")
    for app, (plain, guarded, result) in results.items():
        gated = result.l2.replaced_prefetches
        print(f"  {app:8s} repl={plain:.2f} conflict:repl={guarded:.2f} "
              f"replaced-after-gating={gated}")
        # Gating must not cost meaningful performance on its target apps.
        assert guarded >= plain - 0.06


def bench_adaptive_selection(benchmark, fresh_caches):
    """Adaptive seq|repl should track the better single algorithm per app."""
    def study():
        out = {}
        for app in ("cg", "mcf"):
            baseline = cached_run(app, "nopref", BENCH_SCALE)
            adaptive = run_simulation(
                app, SystemConfig(name="adaptive",
                                  ulmt_algorithm="adaptive:seq4|repl"),
                scale=BENCH_SCALE)
            repl = run_simulation(app, "repl", scale=BENCH_SCALE)
            out[app] = (baseline.execution_time / adaptive.execution_time,
                        baseline.execution_time / repl.execution_time)
        return out

    results = run_once(benchmark, study)
    print("\nAdaptive algorithm selection:")
    for app, (adaptive, repl) in results.items():
        print(f"  {app:8s} adaptive={adaptive:.2f} repl={repl:.2f}")
        assert adaptive > 0.9 * repl  # never far behind the specialist
