"""Benchmark/regeneration of Figure 7 (execution time by algorithm)."""

from conftest import BENCH_APPS, BENCH_SCALE, run_once

from repro.experiments import fig7


def bench_fig7(benchmark, fresh_caches):
    result = run_once(benchmark, fig7.run, scale=BENCH_SCALE,
                      apps=BENCH_APPS)
    avg = result["avg_speedups"]
    print("\nFigure 7 (scaled) — average speedups over NoPref "
          "(paper at full scale: Base 1.06, Chain 1.14, Repl 1.32, "
          "Conven4+Repl 1.46, Custom 1.53):")
    for config, speedup in avg.items():
        print(f"  {config:14s} {speedup:.2f}")
    # Shape: the paper's ordering of the pair-based algorithms.
    assert avg["repl"] > avg["base"]
    assert avg["repl"] > 1.0
    assert avg["conven4+repl"] >= avg["repl"] * 0.95
