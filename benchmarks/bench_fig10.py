"""Benchmark/regeneration of Figure 10 (ULMT response and occupancy)."""

from conftest import BENCH_APPS, BENCH_SCALE, run_once

from repro.experiments import fig10


def bench_fig10(benchmark, fresh_caches):
    bars = run_once(benchmark, fig10.run, scale=BENCH_SCALE,
                    apps=BENCH_APPS)
    print("\nFigure 10 (scaled) — response/occupancy in main cycles "
          "(paper: occupancy < 200, Repl response lowest, ReplMC ~2x):")
    for b in bars:
        print(f"  {b.config:8s} response={b.response:6.1f} "
              f"occupancy={b.occupancy:6.1f} ipc={b.ipc:.2f}")
    by_name = {b.config: b for b in bars}
    assert all(b.occupancy < 200 for b in bars)
    assert by_name["repl"].response < by_name["chain"].response
    assert by_name["replMC"].response > by_name["repl"].response
