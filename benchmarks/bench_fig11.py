"""Benchmark/regeneration of Figure 11 (main memory bus utilisation)."""

from conftest import BENCH_APPS, BENCH_SCALE, run_once

from repro.experiments import fig11


def bench_fig11(benchmark, fresh_caches):
    bars = run_once(benchmark, fig11.run, scale=BENCH_SCALE,
                    apps=BENCH_APPS,
                    configs=("nopref", "repl", "conven4+repl"))
    print("\nFigure 11 (scaled) — bus utilisation "
          "(paper: ~20% NoPref to ~36% worst, ~6% prefetch-direct):")
    for b in bars:
        print(f"  {b.config:14s} total={b.utilization:.2f} "
              f"prefetch-direct={b.prefetch_part:.2f}")
    by_name = {b.config: b for b in bars}
    assert by_name["nopref"].prefetch_part == 0.0
    assert by_name["repl"].utilization > by_name["nopref"].utilization
    # The increase stays tolerable (nowhere near saturation).
    assert all(b.utilization < 0.8 for b in bars)
