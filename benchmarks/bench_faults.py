"""Benchmark of graceful degradation: speedup vs. uniform fault rate.

Sweeps :meth:`FaultPlan.uniform` intensities over the three correlation
algorithms and checks that speedup over NoPref *degrades smoothly*: no
crash, no cliff below the no-prefetching baseline, and the fault-free
column matches a clean run bit for bit.
"""

from dataclasses import replace

from conftest import run_once

from repro.faults import FaultPlan
from repro.sim.config import preset
from repro.sim.driver import run_simulation

APP = "mcf"
SCALE = 0.25
RATES = (0.0, 0.02, 0.05, 0.1, 0.2)
ALGORITHMS = ("base", "chain", "repl")


def _sweep():
    baseline = run_simulation(APP, "nopref", scale=SCALE)
    table = {}
    for name in ALGORITHMS:
        row = []
        for rate in RATES:
            config = replace(preset(name),
                             fault_plan=FaultPlan.uniform(rate, seed=0))
            result = run_simulation(APP, config, scale=SCALE)
            row.append(baseline.execution_time / result.execution_time)
        table[name] = row
    clean = {name: run_simulation(APP, name, scale=SCALE)
             for name in ALGORITHMS}
    return baseline, table, clean


def bench_fault_degradation(benchmark, fresh_caches):
    baseline, table, clean = run_once(benchmark, _sweep)

    print(f"\nSpeedup over NoPref vs uniform fault rate — {APP} @ {SCALE}:")
    print("  rate    " + "  ".join(f"{r:>6g}" for r in RATES))
    for name, row in table.items():
        print(f"  {name:6s}  " + "  ".join(f"{s:6.3f}" for s in row))

    for name, row in table.items():
        # Rate 0 must be bit-identical to a run with no fault plan at all.
        clean_speedup = (baseline.execution_time
                         / clean[name].execution_time)
        assert row[0] == clean_speedup

        # Graceful degradation: every chaotic point stays a win-or-wash
        # (never a cliff below the NoPref baseline)...
        assert all(s > 0.9 for s in row), (name, row)
        # ...faults never *improve* the prefetcher...
        assert all(s <= row[0] + 0.02 for s in row), (name, row)
        # ...and the heaviest chaos costs real performance, trending the
        # speedup toward 1.0 rather than collapsing it.
        assert row[-1] < row[0]
        assert abs(row[-1] - 1.0) < 0.1, (name, row)
