"""Benchmark/regeneration of Table 2 (correlation table sizing)."""

from conftest import BENCH_APPS, BENCH_SCALE, run_once

from repro.experiments import table2


def bench_table2(benchmark, fresh_caches):
    sizings = run_once(benchmark, table2.run, scale=BENCH_SCALE,
                       apps=BENCH_APPS)
    print("\nTable 2 (scaled inputs): app, NumRows, Repl MB")
    for s in sizings:
        print(f"  {s.app:8s} {s.num_rows_k:6.0f}K  "
              f"{s.size_mbytes('repl'):.2f} MB")
    # The sizing procedure must yield power-of-two row counts that held
    # replacements under 5%.
    assert all(s.num_rows & (s.num_rows - 1) == 0 for s in sizings)
