"""Benchmark/regeneration of Table 1 (algorithm comparison)."""

from repro.experiments import table1


def bench_table1(benchmark):
    traits = benchmark(table1.run)
    assert table1.verify_against_paper(traits)
    print("\nTable 1 regenerated; matches paper: True")
