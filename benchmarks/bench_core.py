"""Core-engine benchmark: serial vs batch-kernel vs parallel vs warm cache.

Unlike the per-figure ``bench_*`` modules (which time one figure each under
pytest-benchmark), this is a standalone harness for the execution engines
themselves.  It runs the same representative task set four ways —

1. **cold serial** — ``jobs=1``, no cache, event engine (the pre-engine
   baseline path);
2. **cold serial batch** — the same tasks on the vectorized batch kernel
   (``engine="batch"``), still ``jobs=1`` and uncached;
3. **cold parallel** — ``jobs=N`` workers, writing the persistent cache;
4. **warm cache** — a rerun served entirely from disk —

asserts all four produce identical results (the batch pass doubles as the
bit-identity oracle gate at benchmark scale), and writes the
machine-readable ``BENCH_core.json`` next to this file::

    python benchmarks/bench_core.py                  # full (BENCH_SCALE)
    python benchmarks/bench_core.py --scale 0.05     # quicker
    python benchmarks/bench_core.py --jobs 8 --output /tmp/bench.json

The JSON records the four wall-clocks plus the derived ratios
(``kernel_speedup``, ``parallel_speedup``, ``warm_fraction``) and enough
machine context (``cpu_count``, ``core_limited``) to interpret them: on a
single-core host the parallel pass cannot beat serial — ``core_limited``
flags exactly that — and the recorded numbers say so honestly.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))          # conftest constants
sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from conftest import BENCH_APPS, BENCH_SCALE  # noqa: E402

from repro.analysis.prediction import PREDICTORS  # noqa: E402
from repro.perf.cache import ResultCache  # noqa: E402
from repro.perf.pool import (fig5_task, run_tasks, sim_task,  # noqa: E402
                             tablesize_task, with_engine)
from repro.workloads.registry import clear_trace_cache  # noqa: E402

#: The configs of the core comparison (Figure 7's main columns).
CORE_CONFIGS = ("nopref", "base", "repl")

#: Floor asserted on ``serial_s / batch_serial_s``.  The design target for
#: the batch kernel was a 10x cold-serial speedup over a naive event loop;
#: the event engine here is *not* naive (it already batches lazily and
#: skips quiescent work), and the ULMT configs spend over half their time
#: in the shared prefetcher/cost-model stack that both engines pay
#: identically — which caps the achievable whole-set ratio at roughly 2x
#: on this pure-Python twin (measured per-cell: ~2.0-2.6x nopref,
#: ~1.2-2.0x ULMT configs; whole task set 2.18x at BENCH_SCALE on the
#: CI container — see docs/PERFORMANCE.md, "Batch kernel").  The floor
#: sits ~40% under the measured whole-set ratio so single-core CI timing
#: noise does not flake the gate while a real kernel regression (which
#: shows up as a 2x+ slowdown of the vector path) still trips it.
MIN_KERNEL_SPEEDUP = 1.25

DEFAULT_OUTPUT = Path(__file__).parent / "BENCH_core.json"


def core_tasks(scale: float) -> list:
    """The benchmark task set: every figure family over BENCH_APPS."""
    tasks = [sim_task(app, config, scale)
             for config in CORE_CONFIGS for app in BENCH_APPS]
    tasks += [fig5_task(app, scale, PREDICTORS) for app in BENCH_APPS]
    tasks += [tablesize_task(app, scale) for app in BENCH_APPS]
    return tasks


def timed_pass(label: str, tasks: list, jobs: int,
               cache: ResultCache | None) -> tuple[float, list]:
    """One measured execution of the whole task set."""
    clear_trace_cache()     # each pass regenerates traces (or forks anew)
    start = time.perf_counter()
    results = run_tasks(tasks, jobs=jobs, cache=cache)
    elapsed = time.perf_counter() - start
    failed = sum(1 for r in results if r is None)
    print(f"[bench_core] {label}: {elapsed:.2f}s "
          f"({len(tasks)} tasks, {failed} failed)", file=sys.stderr)
    if failed:
        raise SystemExit(f"{label}: {failed} task(s) failed")
    return elapsed, results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--scale", type=float, default=BENCH_SCALE,
                        help=f"workload scale (default {BENCH_SCALE})")
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker processes for the parallel pass "
                             "(default 4)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="where to write BENCH_core.json")
    parser.add_argument("--min-kernel-speedup", type=float,
                        default=MIN_KERNEL_SPEEDUP,
                        help="assert serial/batch-serial at least this "
                             f"(default {MIN_KERNEL_SPEEDUP}; see the "
                             "MIN_KERNEL_SPEEDUP note)")
    args = parser.parse_args(argv)

    tasks = core_tasks(args.scale)
    batch_tasks = [with_engine(task, "batch") for task in tasks]
    with tempfile.TemporaryDirectory(prefix="bench-core-cache-") as tmp:
        cache = ResultCache(tmp)
        serial_s, serial = timed_pass("cold serial (jobs=1, no cache)",
                                      tasks, jobs=1, cache=None)
        batch_s, batch = timed_pass(
            "cold serial batch kernel (jobs=1, no cache)", batch_tasks,
            jobs=1, cache=None)
        parallel_s, parallel = timed_pass(
            f"cold parallel (jobs={args.jobs})", tasks, jobs=args.jobs,
            cache=cache)
        warm_s, warm = timed_pass("warm cache", tasks, jobs=args.jobs,
                                  cache=cache)

    if batch != serial or parallel != serial or warm != serial:
        raise SystemExit("parity violation: passes produced different "
                         "results — do not trust these numbers")
    print("[bench_core] parity: serial == batch == parallel == warm",
          file=sys.stderr)

    kernel_speedup = serial_s / batch_s
    cpu_count = os.cpu_count() or 1
    core_limited = cpu_count < args.jobs
    if core_limited:
        # Honesty caveat: with fewer cores than workers the parallel pass
        # measures process-pool overhead, not parallelism — its "speedup"
        # is an artifact of scheduling, not a property of the engine.
        print(f"[bench_core] CAVEAT: cpu_count={cpu_count} < "
              f"jobs={args.jobs}; parallel_speedup is core-limited and "
              f"not meaningful on this host", file=sys.stderr)

    report = {
        "scale": args.scale,
        "jobs": args.jobs,
        "cpu_count": cpu_count,
        "core_limited": core_limited,
        "apps": list(BENCH_APPS),
        "configs": list(CORE_CONFIGS),
        "tasks": len(tasks),
        "engines": ["event", "batch"],
        "serial_s": round(serial_s, 3),
        "batch_serial_s": round(batch_s, 3),
        "parallel_s": round(parallel_s, 3),
        "warm_s": round(warm_s, 3),
        "kernel_speedup": round(kernel_speedup, 3),
        "parallel_speedup": round(serial_s / parallel_s, 3),
        "warm_fraction": round(warm_s / serial_s, 5),
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    if kernel_speedup < args.min_kernel_speedup:
        raise SystemExit(
            f"kernel speedup {kernel_speedup:.2f}x below the "
            f"{args.min_kernel_speedup}x floor — batch kernel regressed "
            f"(see MIN_KERNEL_SPEEDUP for the tolerance rationale)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
