"""Benchmark/regeneration of Table 3 (architecture parameters)."""

from repro.experiments import table3


def bench_table3(benchmark):
    groups = benchmark(table3.run)
    assert table3.verify_round_trips()
    print(f"\nTable 3 regenerated ({len(groups)} parameter groups); "
          f"round trips match paper: True")
