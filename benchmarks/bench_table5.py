"""Benchmark/regeneration of Table 5 (customisations)."""

from repro.experiments import table5


def bench_table5(benchmark):
    rows = benchmark(table5.run)
    joined = " | ".join(f"{apps}: {desc}" for apps, desc in rows)
    assert any("CG" in apps for apps, _ in rows)
    assert any("NumLevels = 4" in desc for _, desc in rows)
    print(f"\nTable 5 regenerated: {joined}")
