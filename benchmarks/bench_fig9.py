"""Benchmark/regeneration of Figure 9 (miss/prefetch breakdown)."""

from conftest import BENCH_APPS, BENCH_SCALE, run_once

from repro.experiments import fig9


def bench_fig9(benchmark, fresh_caches):
    result = run_once(benchmark, fig9.run, scale=BENCH_SCALE,
                      apps=BENCH_APPS, configs=("base", "chain", "repl"))
    print("\nFigure 9 (scaled) — coverage by config "
          "(paper: Base/Chain small, Repl ~0.74):")
    for config, group in result["groups"].items():
        avg = group.get("avg-other-7")
        if avg is not None:
            print(f"  {config:6s} coverage={avg.coverage:.2f} "
                  f"replaced={avg.replaced:.2f} redundant={avg.redundant:.2f}")
    repl = result["groups"]["repl"]["avg-other-7"]
    base = result["groups"]["base"]["avg-other-7"]
    assert repl.coverage > base.coverage
