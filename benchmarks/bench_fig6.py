"""Benchmark/regeneration of Figure 6 (time between L2 misses)."""

from conftest import BENCH_APPS, BENCH_SCALE, run_once

from repro.experiments import fig6
from repro.sim.stats import MISS_DISTANCE_LABELS


def bench_fig6(benchmark, fresh_caches):
    result = run_once(benchmark, fig6.run, scale=BENCH_SCALE,
                      apps=BENCH_APPS)
    avg = result["average"]
    print("\nFigure 6 (scaled) — average inter-miss distance fractions:")
    for label, frac in zip(MISS_DISTANCE_LABELS, avg):
        print(f"  {label:10s} {frac:.2f}")
    # Paper: the [200,280) round-trip bin dominates on average.
    assert avg[2] == max(avg)
