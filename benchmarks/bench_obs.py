"""Observability-overhead benchmark: the disabled path must cost nothing.

Two claims are checked (see ``docs/OBSERVABILITY.md``):

1. **Zero allocation when disabled.**  A simulation run without a tracer
   must never enter :mod:`repro.obs` — asserted with ``tracemalloc``: the
   run performs *zero* allocations attributable to any file of the
   package.  Every event object is constructed inside
   ``repro/obs/tracer.py``, so a single stray emission on the untraced
   path fails this immediately.

2. **No wall-clock regression.**  The cold-serial pass of the committed
   ``BENCH_core.json`` task set is re-timed and compared against the
   recorded ``serial_s``.  Machines differ, so the default threshold is
   generous; ``--strict`` enforces the <3% acceptance bound and is what
   CI (or a calibrated box) should use::

    python benchmarks/bench_obs.py                 # informational
    python benchmarks/bench_obs.py --strict        # enforce the 3% bound
    python benchmarks/bench_obs.py --skip-timing   # allocation check only

The enabled-path overhead (traced vs untraced wall-clock of one cell) is
also measured and reported, as is the streaming-vs-buffered export ratio
(same cell, bounded buffer, byte-identity asserted along the way), and
everything lands in ``BENCH_obs.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import tracemalloc
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))          # conftest constants
sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from bench_core import core_tasks  # noqa: E402
from conftest import BENCH_SCALE  # noqa: E402

import hashlib  # noqa: E402
import tempfile  # noqa: E402

import repro.obs.runner  # noqa: E402  (import before tracemalloc starts)
from repro.obs.runner import run_traced, run_traced_streaming  # noqa: E402
from repro.obs.tracer import DEFAULT_STREAM_BUFFER  # noqa: E402
from repro.perf.pool import run_tasks  # noqa: E402
from repro.sim.driver import run_simulation  # noqa: E402
from repro.workloads.registry import clear_trace_cache  # noqa: E402

REFERENCE = Path(__file__).parent / "BENCH_core.json"
DEFAULT_OUTPUT = Path(__file__).parent / "BENCH_obs.json"

#: Cell used for the allocation check and the enabled-overhead ratio.
PROBE_APP, PROBE_CONFIG, PROBE_SCALE = "cg", "repl", 0.05


def disabled_path_allocations() -> int:
    """Bytes allocated in ``repro/obs/*`` by one untraced run (want: 0)."""
    obs_dir = str(Path(repro.obs.runner.__file__).parent)
    run_simulation(PROBE_APP, PROBE_CONFIG, scale=PROBE_SCALE)  # warm caches
    tracemalloc.start(1)
    try:
        run_simulation(PROBE_APP, PROBE_CONFIG, scale=PROBE_SCALE)
        snapshot = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    obs_only = snapshot.filter_traces(
        [tracemalloc.Filter(True, obs_dir + "/*")])
    return sum(stat.size for stat in obs_only.statistics("filename"))


def enabled_overhead() -> tuple[float, float]:
    """(traced/untraced wall-clock ratio, events per traced second)."""
    clear_trace_cache()
    start = time.perf_counter()
    run_simulation(PROBE_APP, PROBE_CONFIG, scale=PROBE_SCALE)
    untraced_s = time.perf_counter() - start
    clear_trace_cache()
    start = time.perf_counter()
    traced = run_traced(PROBE_APP, PROBE_CONFIG, scale=PROBE_SCALE)
    traced_s = time.perf_counter() - start
    return traced_s / untraced_s, len(traced.events) / traced_s


def streaming_overhead() -> tuple[float, int]:
    """(streamed/buffered export wall-clock ratio, peak buffered events).

    Both paths trace the probe cell and write its full JSON-lines stream
    to a temp file; byte-identity of the two files is asserted (the
    streaming contract), so the ratio compares equal work — the streamed
    side just never holds more than ``DEFAULT_STREAM_BUFFER`` events.
    """
    with tempfile.TemporaryDirectory() as tmp:
        buffered_path = Path(tmp) / "buffered.jsonl"
        streamed_path = Path(tmp) / "streamed.jsonl"

        clear_trace_cache()
        start = time.perf_counter()
        run = run_traced(PROBE_APP, PROBE_CONFIG, scale=PROBE_SCALE)
        buffered_path.write_text(run.jsonl(), encoding="ascii")
        buffered_s = time.perf_counter() - start

        clear_trace_cache()
        start = time.perf_counter()
        srun = run_traced_streaming(PROBE_APP, PROBE_CONFIG,
                                    scale=PROBE_SCALE, out=streamed_path,
                                    buffer_events=DEFAULT_STREAM_BUFFER)
        streamed_s = time.perf_counter() - start

        if buffered_path.read_bytes() != streamed_path.read_bytes():
            raise SystemExit("streamed export is not byte-identical to "
                             "the buffered export")
        expected = hashlib.sha256(buffered_path.read_bytes()).hexdigest()
        if srun.sha256 != expected:
            raise SystemExit("streaming sink's rolling SHA-256 disagrees "
                             "with the written bytes")
        if srun.peak_buffered > srun.buffer_events:
            raise SystemExit(
                f"streaming buffer exceeded its bound: "
                f"{srun.peak_buffered} > {srun.buffer_events}")
    return streamed_s / buffered_s, srun.peak_buffered


def timed_cold_serial(scale: float) -> float:
    """Re-run the BENCH_core cold-serial pass (tracing disabled)."""
    tasks = core_tasks(scale)
    clear_trace_cache()
    start = time.perf_counter()
    results = run_tasks(tasks, jobs=1)
    elapsed = time.perf_counter() - start
    failed = sum(1 for r in results if r is None)
    if failed:
        raise SystemExit(f"cold serial: {failed} task(s) failed")
    return elapsed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--strict", action="store_true",
                        help="enforce the <3%% serial regression bound "
                             "(use on the machine BENCH_core.json was "
                             "recorded on, e.g. CI)")
    parser.add_argument("--threshold", type=float, default=1.5,
                        help="non-strict serial_s ratio bound (default 1.5: "
                             "catches gross regressions across machines)")
    parser.add_argument("--skip-timing", action="store_true",
                        help="only run the zero-allocation check")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="where to write BENCH_obs.json")
    args = parser.parse_args(argv)

    leaked = disabled_path_allocations()
    print(f"[bench_obs] disabled-path allocations in repro/obs: {leaked} B",
          file=sys.stderr)
    if leaked:
        raise SystemExit(
            f"disabled tracer path allocated {leaked} bytes inside "
            f"repro/obs — the is-not-None guards are broken")

    report: dict = {"disabled_obs_alloc_bytes": leaked}

    ratio, events_per_s = enabled_overhead()
    report["traced_overhead_ratio"] = round(ratio, 3)
    report["traced_events_per_s"] = round(events_per_s)
    print(f"[bench_obs] enabled-path overhead: {ratio:.2f}x untraced "
          f"({events_per_s:,.0f} events/s)", file=sys.stderr)

    stream_ratio, peak_buffered = streaming_overhead()
    report["stream_vs_buffered_ratio"] = round(stream_ratio, 3)
    report["stream_peak_buffered_events"] = peak_buffered
    report["stream_buffer_events"] = DEFAULT_STREAM_BUFFER
    print(f"[bench_obs] streaming export: {stream_ratio:.2f}x buffered "
          f"(peak {peak_buffered} of {DEFAULT_STREAM_BUFFER} buffered "
          f"events, byte-identical)", file=sys.stderr)

    if not args.skip_timing:
        if not REFERENCE.exists():
            raise SystemExit(f"missing {REFERENCE}: run bench_core.py first")
        reference = json.loads(REFERENCE.read_text())
        scale = reference["scale"]
        serial_s = timed_cold_serial(scale)
        bound = 1.03 if args.strict else args.threshold
        serial_ratio = serial_s / reference["serial_s"]
        report.update({
            "scale": scale,
            "serial_s": round(serial_s, 3),
            "reference_serial_s": reference["serial_s"],
            "serial_ratio": round(serial_ratio, 4),
            "bound": bound,
            "strict": args.strict,
        })
        print(f"[bench_obs] cold serial: {serial_s:.2f}s vs reference "
              f"{reference['serial_s']:.2f}s (ratio {serial_ratio:.3f}, "
              f"bound {bound})", file=sys.stderr)
        if serial_ratio > bound:
            args.output.write_text(json.dumps(report, indent=2) + "\n")
            raise SystemExit(
                f"cold-serial regression: {serial_ratio:.3f}x the committed "
                f"BENCH_core.json serial_s exceeds the {bound} bound")

    if not args.skip_timing:
        # --skip-timing is a gate (CI), not a measurement: leave the
        # committed full record alone.
        args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
