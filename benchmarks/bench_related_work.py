"""Related-work bench: the ULMT against a DASP-style hardwired pull engine.

Reproduces the Section 2.1 / Section 6 comparison in numbers: the
hardwired stride engine only helps stride-friendly code, while the
general-purpose ULMT covers irregular patterns too — the paper's central
motivation for a programmable memory-side prefetcher.
"""

from conftest import BENCH_SCALE, run_once

from repro.experiments.common import cached_run
from repro.sim.driver import run_simulation


def bench_dasp_vs_ulmt(benchmark, fresh_caches):
    def study():
        out = {}
        for app in ("cg", "mcf"):
            baseline = cached_run(app, "nopref", BENCH_SCALE)
            dasp = run_simulation(app, "dasp", scale=BENCH_SCALE)
            repl = run_simulation(app, "repl", scale=BENCH_SCALE)
            out[app] = {
                "dasp": baseline.execution_time / dasp.execution_time,
                "repl": baseline.execution_time / repl.execution_time,
            }
        return out

    results = run_once(benchmark, study)
    print("\nMemory-side engines (paper §2.1/§6): hardwired pull (DASP) "
          "vs programmable push (ULMT/Repl):")
    for app, r in results.items():
        print(f"  {app:5s} dasp={r['dasp']:.2f}  repl={r['repl']:.2f}")
    # The general-purpose ULMT must cover the irregular application the
    # stride engine cannot touch.
    assert abs(results["mcf"]["dasp"] - 1.0) < 0.05
    assert results["mcf"]["repl"] > 1.15
